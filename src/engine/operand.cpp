#include "engine/operand.hpp"

#include <algorithm>

#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace srumma::engine {

void acquire(Rank& me, DistMatrix& mat, index_t i0, index_t j0, index_t mi,
             index_t nj, ShmFlavor flavor, OperandState& st) {
  const MachineModel& mm = me.machine();
  SRUMMA_ASSERT(!st.cache_ref.active(),
                "srumma: re-acquiring an operand whose cache ref was never "
                "finished");
  st.handle = PatchHandle{};
  st.view = ConstMatrixView{};
  st.i0 = i0;
  st.j0 = j0;
  st.m = mi;
  st.n = nj;
  st.valid = true;
  st.failed = false;
  st.rate_factor = 1.0;

  if (flavor == ShmFlavor::Direct) {
    const std::optional<int> owner =
        mat.single_owner_in_domain(me, i0, j0, mi, nj);
    fault::FaultPlane* fp = me.team().faults();
    if (owner.has_value() && fp != nullptr &&
        fp->direct_faults(mm.domain_of(*owner))) {
      // Direct loads/stores into this domain fault (injected dead domain):
      // degrade this peer's access flavor to Copy — the one-sided get path
      // below still works, it just pays the buffer.
      me.trace().shm_fallbacks += 1;
      if (trace::Tracer* tr = me.tracer())
        tr->instant(me.id(), trace::Phase::ShmFallback, me.clock().now());
    } else if (owner.has_value()) {
      st.direct = true;
      // dgemm streams operands straight out of the owner's memory; when the
      // owner sits on another physical node the kernel runs at the
      // machine's remote-direct rate (non-cacheable on the X1, NUMA-far on
      // the Altix).
      st.rate_factor = mm.node_of(*owner) == me.node()
                           ? 1.0
                           : mm.remote_direct_rate_factor;
      if (!mat.phantom()) {
        st.view = *mat.direct_view(me, i0, j0, mi, nj);
      } else {
        // No data to view, but the *modeled* loads still reach through to
        // the owner's segment — declare them so the checker sees the same
        // access pattern the real run would.
        mat.declare_direct_read(me, *owner, i0, j0, mi, nj);
      }
      return;
    }
  }
  // Copy path: fetch into the local buffer with a (possibly) nonblocking
  // generalized get.
  st.direct = false;
  MatrixView dst;
  if (!mat.phantom()) {
    if (st.buf.rows() < mi || st.buf.cols() < nj) {
      st.buf = Matrix(mi, nj);
    }
    dst = st.buf.block(0, 0, mi, nj);
    st.view = dst;
  }
  const auto do_fetch = [&] { st.handle = mat.fetch_nb(me, i0, j0, mi, nj, dst); };
  cache::BlockCacheSet* cs = mat.rma().block_cache();
  if (cs != nullptr && !mat.rect_in_domain(me, i0, j0, mi, nj)) {
    // Cooperative single-flight acquisition.  As fetcher, the callback
    // issues this rank's own get and reports whether the issue was clean —
    // every piece delivered, uncorrupted, and inside the per-op deadline —
    // in which case the bytes are publishable for domain mates right away.
    // As sharer, no get is issued at all (st.handle stays empty, so the
    // executor's wait/verify steps skip naturally); the buffer is filled
    // from the published entry by finish_cache before dgemm.
    const cache::PatchKey key{mat.region_seq(), i0, j0, mi, nj};
    st.cache_ref = cs->acquire(
        me, key, mat.remote_piece_bytes(me, i0, j0, mi, nj),
        [&]() -> cache::FetchOutcome {
          do_fetch();
          const double deadline = mat.rma().retry_policy().op_timeout;
          bool clean = true;
          for (const RmaHandle& p : st.handle.pieces) {
            if (p.failed || p.corrupted ||
                (deadline > 0.0 && p.completion - p.issue_vt > deadline)) {
              clean = false;
            }
          }
          return {st.handle.completion(), clean};
        },
        st.view);
    if (st.cache_ref.role == cache::Role::Bypass) do_fetch();
  } else {
    do_fetch();
  }
  st.cap_bytes = std::max(
      st.cap_bytes,
      static_cast<std::uint64_t>(mi) * static_cast<std::uint64_t>(nj) *
          sizeof(double));
}

void verify_operand(Rank& me, DistMatrix& mat, OperandState& st) {
  if (st.direct || st.failed || mat.phantom()) return;
  int redos = 0;
  while (!mat.verify_fetched(me, st.i0, st.j0, st.m, st.n, st.view)) {
    SRUMMA_REQUIRE(++redos <= 16,
                   "srumma: fetched patch still corrupt after 16 refetches");
    const double t0 = me.clock().now();
    MatrixView dst = st.buf.block(0, 0, st.m, st.n);
    PatchHandle h = mat.fetch_nb(me, st.i0, st.j0, st.m, st.n, dst);
    const bool ok = mat.try_wait(me, h);
    me.trace().checksum_redos += 1;
    me.trace().time_recovery += me.clock().now() - t0;
    if (trace::Tracer* tr = me.tracer()) {
      tr->span(me.id(), trace::Phase::Redo, t0, me.clock().now());
      tr->counter_set(me.id(), trace::CounterId::RecoverySeconds,
                      me.clock().now(), me.trace().time_recovery);
    }
    if (!ok) {
      st.failed = true;
      return;
    }
  }
}

void finish_cache(Rank& me, DistMatrix& mat, OperandState& st, bool fetched,
                  bool verify) {
  if (!st.cache_ref.active()) return;
  cache::BlockCacheSet* cset = mat.rma().block_cache();
  if (st.cache_ref.role == cache::Role::Shared) {
    MatrixView dst;
    if (!mat.phantom()) dst = st.buf.block(0, 0, st.m, st.n);
    cset->consume_shared(me, st.cache_ref, dst);
    mat.declare_shared_read(me, st.i0, st.j0, st.m, st.n);
  } else {
    bool corrupted = false;
    for (const RmaHandle& p : st.handle.pieces) corrupted |= p.corrupted;
    const bool verified = verify && fetched && !st.failed && !mat.phantom();
    cset->finish_fetch(me, st.cache_ref,
                       !st.failed && (verified || !corrupted), st.view);
  }
}

}  // namespace srumma::engine
