#pragma once
// Dependency-driven task engine with intra-domain work stealing
// (docs/ENGINE.md).
//
// The static pipeline in core/srumma.cpp executes the task plan strictly in
// order: task t waits on the fetches issued for slot t mod (lookahead+1),
// so one straggling get blocks every later task (head-of-line blocking),
// and a failed operand sends the whole task to the tail of the list.  The
// engine replaces those index-arithmetic lifetime rules with explicit
// per-task operand ownership:
//
//   * every task owns references to its operand slots; a slot is fetched
//     once, shared by every consumer of the same patch, and released when
//     its last consumer commits;
//   * tasks execute out of order across C tiles — the scheduler picks the
//     issued task whose operands land earliest (completions are known at
//     issue time in the virtual-time model) — while each tile's products
//     commit in plan order, which keeps C bitwise-identical to the
//     pipeline's result;
//   * a failed operand is re-armed in place (fresh fetch, task stays where
//     it is) instead of requeued at the tail;
//   * tasks with an out-of-domain operand are posted on a per-domain board;
//     an idle domain mate may steal one, fetch the operands itself, run the
//     product into a scratch tile seeded with the owner's current C tile,
//     and hand the finished tile back through shared memory.  The owner
//     commits it at the task's plan position, so stealing never perturbs
//     the numerics.
//
// Because steal decisions race in real time, the *modeled timing* of an
// engine run may vary run to run; the C result is structurally bitwise
// deterministic.  Tests that compare timings pin EngineMode::Off.

#include <cstddef>
#include <vector>

#include "core/options.hpp"
#include "core/task_plan.hpp"
#include "dist/dist_matrix.hpp"

namespace srumma::engine {

/// Resolve the tri-state engine option: On/Off are explicit; Auto defers to
/// the SRUMMA_ENGINE environment variable (unset, empty or "0" = Off).
[[nodiscard]] bool selected(EngineMode mode);

/// The commit-chain structure of a plan: tasks grouped by C tile, each
/// tile's products committing in plan order (the bitwise-identity
/// invariant).  Exported so the static analyzer (src/analysis) audits the
/// exact chains run_plan executes — both call chain_layout, so the static
/// model and the executor cannot drift.
struct ChainLayout {
  std::vector<int> task_tile;  ///< plan index -> tile id
  std::vector<int> task_pos;   ///< plan index -> position in its tile chain
  std::vector<std::vector<std::size_t>> tile_tasks;  ///< tile -> plan indices
  [[nodiscard]] int tiles() const {
    return static_cast<int>(tile_tasks.size());
  }
};

[[nodiscard]] ChainLayout chain_layout(const TaskPlan& plan);

/// Plan indices run_plan posts on the domain steal board: tasks with an
/// out-of-domain operand, on machines with more than one rank per domain.
[[nodiscard]] std::vector<std::size_t> stealable_tasks(const TaskPlan& plan,
                                                       int domain_size);

/// Execute one rank's task plan through the engine.  Called from
/// srumma_multiply after tuning, plan construction and the beta pre-scale;
/// opens and closes its own cooperative-cache epoch, exactly like the
/// static pipeline.  `opt` is the tuned option set; `lookahead` is the
/// resolved prefetch depth (0 in blocking mode).
void run_plan(Rank& me, DistMatrix& a, DistMatrix& b, DistMatrix& c,
              const SrummaOptions& opt, int lookahead, const TaskPlan& plan);

}  // namespace srumma::engine
