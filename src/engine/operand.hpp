#pragma once
// Operand acquisition shared by the two task executors.
//
// One OperandState is one acquired patch of A or B: either a direct
// (in-place) view of a peer's block, or a copy fetched into a local buffer
// with a (possibly) nonblocking generalized get, optionally routed through
// the cooperative block cache.  The static pipeline (core/srumma.cpp) owns
// a rotating pool of these; the dependency-driven engine (engine/engine.cpp)
// hands each task-graph operand its own refcounted state.  Both executors
// must acquire, verify and finish identically — that is what makes their C
// results and fault behavior comparable — so the machinery lives here, not
// in either executor.
//
// Accounting note: acquire() deliberately bumps no task-classification
// counters.  copy_tasks / direct_tasks count *block products* and are
// classified at execution time by the caller (both operands direct ->
// direct, else copy), so the identity
//     copy_tasks + direct_tasks == executed block products
// holds exactly even under fetch reissues and A-patch reuse.

#include "cache/block_cache.hpp"
#include "core/options.hpp"
#include "dist/dist_matrix.hpp"

namespace srumma::engine {

// One acquired operand patch: either a direct (in-place) view of a peer's
// block, or a copy fetched into a local buffer.
struct OperandState {
  Matrix buf;            // backing storage for the copy path
  PatchHandle handle;    // pending fetch (copy path only)
  ConstMatrixView view;  // what dgemm will read (empty in phantom mode)
  // Patch identity, for A-reuse matching.
  index_t i0 = -1, j0 = -1, m = -1, n = -1;
  bool valid = false;
  bool direct = false;
  // The fetch behind this state exhausted its RMA retries: the buffer
  // contents are unreliable.  Every task that reads it must be requeued
  // (pipeline) or re-armed (engine), including later A-reuse consumers —
  // the flag stays set until the state is re-acquired, and matches()
  // refuses to pair a new task with it.
  bool failed = false;
  // Cooperative-cache participation of the current acquire (inactive when
  // the cache is off, the patch is in-domain, or the path is direct).
  cache::Ref cache_ref;
  double rate_factor = 1.0;  // dgemm rate multiplier for direct access
  // Modeled buffer capacity this state has grown to via copy-path
  // acquires (tracked even in phantom mode, where nothing is allocated).
  std::uint64_t cap_bytes = 0;
  // Highest task index that reads this state (pipeline executor only).  A
  // state may only be evicted (refetched with a different patch) once that
  // task has been computed — reuse runs can keep a buffer live across many
  // pipeline slots.
  std::ptrdiff_t last_user = -1;

  [[nodiscard]] bool matches(index_t pi0, index_t pj0, index_t pm,
                             index_t pn) const {
    return valid && !failed && i0 == pi0 && j0 == pj0 && m == pm && n == pn;
  }
};

/// Acquire a patch of `mat` into `st` (direct view or nonblocking fetch).
void acquire(Rank& me, DistMatrix& mat, index_t i0, index_t j0, index_t mi,
             index_t nj, ShmFlavor flavor, OperandState& st);

/// Checksum stand-in for a freshly fetched copy-path patch: compare the
/// buffer against the owners' (quiescent) segments and refetch on mismatch.
/// Bounded — a refetch draws fresh fault decisions and can be corrupted
/// again, but 16 consecutive corruptions at any sane injection rate means
/// the configuration is broken, not unlucky.  A refetch that itself
/// exhausts its RMA retries marks the state failed so the consuming task
/// degrades through the executor's normal requeue / re-arm path.
void verify_operand(Rank& me, DistMatrix& mat, OperandState& st);

/// Cooperative-cache epilogue for one operand state, run after the executor
/// waited on (and possibly verified) its own fetch and before the task is
/// allowed to requeue / re-arm (so a failed fetcher always releases its
/// pin, leaving a dirty entry for the next requester to re-arm).  Sharers
/// pay the intra-domain copy here and register the read with the checker at
/// the true origin; fetchers publish when the final bytes are known good —
/// verified against the owner, or delivered with no piece corrupted — and a
/// late (post-recovery) publish otherwise stays dirty.
void finish_cache(Rank& me, DistMatrix& mat, OperandState& st, bool fetched,
                  bool verify);

}  // namespace srumma::engine
