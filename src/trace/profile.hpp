#pragma once
// Post-run execution profile: where each rank's virtual time went and how
// busy the contended resources were.  The production-debugging counterpart
// of MultiplyResult's aggregate view — this is what you look at when a
// platform model behaves unexpectedly.

#include <iosfwd>

#include "runtime/team.hpp"

namespace srumma {

/// Per-rank time breakdown table (compute / comm issued / wait / noise /
/// steal / idle) plus per-node NIC and per-domain memory utilization,
/// relative to the team's makespan.  Call after Team::run completes (never
/// concurrently with one).  `max_rows` caps the per-rank section (the
/// extrema rows are always included).
void print_profile(std::ostream& os, Team& team, int max_rows = 16);

}  // namespace srumma
