#include "trace/profile.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "util/table.hpp"

namespace srumma {

void print_profile(std::ostream& os, Team& team, int max_rows) {
  const double makespan = team.max_clock();
  const MachineModel& mm = team.machine();

  // -- per-rank breakdown ----------------------------------------------------
  std::vector<int> order(static_cast<std::size_t>(team.size()));
  for (int r = 0; r < team.size(); ++r) order[static_cast<std::size_t>(r)] = r;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return team.rank(a).clock().now() > team.rank(b).clock().now();
  });
  if (static_cast<int>(order.size()) > max_rows) {
    // Keep the slowest rows plus the single fastest (the straggler view).
    const int fastest = order.back();
    order.resize(static_cast<std::size_t>(max_rows - 1));
    order.push_back(fastest);
  }

  TableWriter ranks({"rank", "node", "clock ms", "compute %", "comm ms",
                     "wait %", "noise ms", "steal ms"});
  for (int r : order) {
    Rank& rk = team.rank(r);
    const TraceCounters& t = rk.trace();
    const double now = rk.clock().now();
    const double denom = now > 0 ? now : 1.0;
    ranks.add_row({TableWriter::num(static_cast<long long>(r)),
                   TableWriter::num(static_cast<long long>(rk.node())),
                   TableWriter::num(now * 1e3, 2),
                   TableWriter::num(100.0 * t.time_compute / denom, 1),
                   TableWriter::num(t.time_comm * 1e3, 2),
                   TableWriter::num(100.0 * t.time_wait / denom, 1),
                   TableWriter::num(t.time_noise * 1e3, 2),
                   TableWriter::num(rk.clock().steal_total() * 1e3, 2)});
  }
  ranks.print(os, "rank profile (slowest first; makespan " +
                      TableWriter::num(makespan * 1e3, 2) + " ms)");

  // -- resource utilization ----------------------------------------------------
  TableWriter res({"resource", "busy ms", "utilization %"});
  const double denom = makespan > 0 ? makespan : 1.0;
  for (int n = 0; n < mm.num_nodes; ++n) {
    const double out = team.network().nic_out(n).busy_total();
    const double in = team.network().nic_in(n).busy_total();
    if (out == 0.0 && in == 0.0) continue;
    res.add_row({"node " + std::to_string(n) + " NIC out",
                 TableWriter::num(out * 1e3, 2),
                 TableWriter::num(100.0 * out / denom, 1)});
    res.add_row({"node " + std::to_string(n) + " NIC in",
                 TableWriter::num(in * 1e3, 2),
                 TableWriter::num(100.0 * in / denom, 1)});
    if (res.row_count() >= 2 * static_cast<std::size_t>(max_rows)) break;
  }
  for (int d = 0; d < mm.num_domains(); ++d) {
    const double mem = team.network().domain_mem(d).busy_total();
    if (mem == 0.0) continue;
    res.add_row({"domain " + std::to_string(d) + " memory",
                 TableWriter::num(mem * 1e3, 2),
                 TableWriter::num(100.0 * mem / denom, 1)});
  }
  if (res.row_count() > 0) {
    os << "\n";
    res.print(os, "resource utilization");
  }
}

}  // namespace srumma
