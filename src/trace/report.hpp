#pragma once
// Experiment instrumentation: counter deltas, collective result assembly,
// and the MultiplyResult record every parallel multiply returns.

#include <string>

#include "runtime/team.hpp"
#include "vtime/trace_counters.hpp"

namespace srumma {

/// Field-wise end - start (both snapshots of the same rank's counters).
[[nodiscard]] TraceCounters trace_delta(const TraceCounters& end,
                                        const TraceCounters& start);

/// Outcome of one collective matrix multiplication, identical on all ranks.
struct MultiplyResult {
  double elapsed = 0.0;   ///< virtual makespan, barrier-to-barrier (s)
  double gflops = 0.0;    ///< 2*m*n*k / elapsed / 1e9
  double overlap = 0.0;   ///< achieved communication/computation overlap
  TraceCounters trace;    ///< team-aggregated counters for the operation
};

/// Collective epilogue: publish my delta since `my_start`, synchronize, and
/// fold all ranks' deltas into a MultiplyResult.  `start_vt` must be the
/// clock value right after the operation's entry barrier and `flops` the
/// total operation flops (2*m*n*k).  Ends with the exit barrier included in
/// `elapsed`.
[[nodiscard]] MultiplyResult collect_result(Rank& me, double start_vt,
                                            const TraceCounters& my_start,
                                            double flops);

/// One-line human-readable summary (GFLOP/s, overlap, traffic split).
[[nodiscard]] std::string describe(const MultiplyResult& r);

}  // namespace srumma
