#include "trace/chrome_trace.hpp"

#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

namespace srumma::trace {

namespace {

// Compact finite-double formatting (JSON forbids NaN/Inf; virtual times
// are always finite).
std::string num(double v) {
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

std::string escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

/// One emitted JSON event object; `first` tracks the comma discipline.
class EventList {
 public:
  explicit EventList(std::ostream& os) : os_(os) {}

  std::ostream& begin() {
    os_ << (first_ ? "\n  " : ",\n  ");
    first_ = false;
    return os_;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

void common_fields(std::ostream& os, const char* name, const char* cat,
                   const char* ph, double ts_us, int pid, int tid) {
  os << "{\"name\":\"" << escape(name) << "\",\"cat\":\"" << cat
     << "\",\"ph\":\"" << ph << "\",\"ts\":" << num(ts_us)
     << ",\"pid\":" << pid << ",\"tid\":" << tid;
}

[[nodiscard]] bool is_comm_phase(Phase p) {
  switch (p) {
    case Phase::Get:
    case Phase::Put:
    case Phase::Acc:
    case Phase::Send:
    case Phase::Recv:
    case Phase::CacheRead:
      return true;
    default:
      return false;
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"schema\":\"srumma-chrome-trace/1\",\"ranks\":" << tracer.ranks()
     << ",\"dropped_events\":[";
  for (int r = 0; r < tracer.ranks(); ++r)
    os << (r > 0 ? "," : "") << tracer.dropped(r);
  os << "]},\"traceEvents\":[";

  EventList ev(os);

  // Track metadata: name the node processes and the rank threads.
  std::set<int> nodes;
  for (int r = 0; r < tracer.ranks(); ++r) nodes.insert(tracer.track(r).node);
  for (int node : nodes) {
    ev.begin() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << node
               << ",\"args\":{\"name\":\"node " << node << "\"}}";
  }
  for (int r = 0; r < tracer.ranks(); ++r) {
    const TrackInfo& ti = tracer.track(r);
    ev.begin() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << ti.node
               << ",\"tid\":" << r << ",\"args\":{\"name\":\"rank " << r
               << " (domain " << ti.domain << ")\"}}";
    ev.begin() << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":"
               << ti.node << ",\"tid\":" << r << ",\"args\":{\"sort_index\":"
               << r << "}}";
  }

  std::uint64_t next_async_id = 1;
  for (int r = 0; r < tracer.ranks(); ++r) {
    const TrackInfo& ti = tracer.track(r);
    for (const TraceEvent& e : tracer.events(r)) {
      const double ts = e.t0 * 1e6;
      switch (e.type) {
        case EvType::Span: {
          const char* name = phase_name(e.phase);
          if (is_comm_phase(e.phase)) {
            // Async pair: in-flight transfers overlap freely.
            const std::uint64_t id = next_async_id++;
            common_fields(ev.begin(), name, "comm", "b", ts, ti.node, r);
            os << ",\"id\":" << id << ",\"args\":{\"bytes\":" << e.arg << "}}";
            common_fields(ev.begin(), name, "comm", "e", e.t1 * 1e6, ti.node,
                          r);
            os << ",\"id\":" << id << "}";
          } else {
            common_fields(ev.begin(), name, "cpu", "X", ts, ti.node, r);
            os << ",\"dur\":" << num((e.t1 - e.t0) * 1e6)
               << ",\"args\":{\"arg\":" << e.arg << "}}";
          }
          break;
        }
        case EvType::Instant: {
          common_fields(ev.begin(), phase_name(e.phase), "event", "i", ts,
                        ti.node, r);
          os << ",\"s\":\"t\",\"args\":{\"arg\":" << e.arg << "}}";
          break;
        }
        case EvType::Counter: {
          // One named counter series per rank, attached to the node pid.
          std::string name = "rank " + std::to_string(r) + " " +
                             counter_name(e.counter);
          common_fields(ev.begin(), name.c_str(), "counter", "C", ts, ti.node,
                        r);
          os << ",\"args\":{\"value\":" << num(e.value) << "}}";
          break;
        }
      }
    }
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path, const Tracer& tracer) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  write_chrome_trace(f, tracer);
  return static_cast<bool>(f);
}

}  // namespace srumma::trace
