#include "trace/journal.hpp"

#include <cstdlib>
#include <set>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace srumma::trace {

namespace {

// Paths some writer in this process already truncated: the first
// RmaChecker opening a journal starts it fresh, peers (A/B/C on distinct
// runtimes, later multiplies) append.
std::mutex g_opened_mu;
std::set<std::string>& opened_paths() {
  static auto* s = new std::set<std::string>();
  return *s;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) >= 0x20) out += ch;
    }
  }
  out += '"';
}

void append_field(std::string& out, const char* key, std::uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

}  // namespace

JournalWriter::JournalWriter(const std::string& path) {
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lk(g_opened_mu);
    fresh = opened_paths().insert(path).second;
  }
  out_.open(path, fresh ? std::ios::trunc : std::ios::app);
}

void JournalWriter::record(const JournalRecord& r) {
  std::string line = "{\"ev\":";
  append_escaped(line, r.ev);
  line += ",\"rank\":";
  line += std::to_string(r.rank);
  if (!r.kind.empty()) {
    line += ",\"kind\":";
    append_escaped(line, r.kind);
  }
  line += ",\"owner\":";
  line += std::to_string(r.owner);
  append_field(line, "seq", r.seq);
  append_field(line, "handle", r.handle);
  append_field(line, "epoch", r.epoch);
  if (r.rcols != 0) {
    append_field(line, "rlo", r.rlo);
    append_field(line, "rrows", r.rrows);
    append_field(line, "rcols", r.rcols);
    append_field(line, "rld", r.rld);
  }
  if (r.lcols != 0) {
    append_field(line, "llo", r.llo);
    append_field(line, "lrows", r.lrows);
    append_field(line, "lcols", r.lcols);
    append_field(line, "lld", r.lld);
  }
  if (!r.site.empty()) {
    line += ",\"site\":";
    append_escaped(line, r.site);
  }
  line += "}\n";
  std::lock_guard<std::mutex> lk(mu_);
  out_ << line;
  out_.flush();  // diagnostics may throw right after recording
}

std::string journal_env_path() {
  const char* v = std::getenv("SRUMMA_RMA_JOURNAL");
  return v == nullptr ? std::string{} : std::string{v};
}

namespace {

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

std::string parse_string(const std::string& s, std::size_t& i, int lineno) {
  SRUMMA_REQUIRE(i < s.size() && s[i] == '"',
                 "journal line " + std::to_string(lineno) +
                     ": expected a string");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
    ++i;
  }
  SRUMMA_REQUIRE(i < s.size(), "journal line " + std::to_string(lineno) +
                                   ": unterminated string");
  ++i;  // closing quote
  return out;
}

// Parses a signed or unsigned integer token into (uvalue, ivalue).
std::pair<std::uint64_t, long long> parse_number(const std::string& s,
                                                 std::size_t& i, int lineno) {
  const std::size_t start = i;
  if (i < s.size() && s[i] == '-') ++i;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  SRUMMA_REQUIRE(i > start && !(i == start + 1 && s[start] == '-'),
                 "journal line " + std::to_string(lineno) +
                     ": expected a number");
  const std::string tok = s.substr(start, i - start);
  if (tok[0] == '-') {
    const long long v = std::strtoll(tok.c_str(), nullptr, 10);
    return {static_cast<std::uint64_t>(v), v};
  }
  const std::uint64_t u = std::strtoull(tok.c_str(), nullptr, 10);
  return {u, static_cast<long long>(u)};
}

}  // namespace

std::vector<JournalRecord> read_journal(const std::string& path) {
  std::ifstream in(path);
  SRUMMA_REQUIRE(in.is_open(), "cannot open journal file: " + path);
  std::vector<JournalRecord> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t i = 0;
    skip_ws(line, i);
    if (i >= line.size()) continue;
    SRUMMA_REQUIRE(line[i] == '{', "journal line " + std::to_string(lineno) +
                                       ": expected an object");
    ++i;
    JournalRecord r;
    for (;;) {
      skip_ws(line, i);
      if (i < line.size() && line[i] == '}') break;
      const std::string key = parse_string(line, i, lineno);
      skip_ws(line, i);
      SRUMMA_REQUIRE(i < line.size() && line[i] == ':',
                     "journal line " + std::to_string(lineno) +
                         ": expected ':'");
      ++i;
      skip_ws(line, i);
      if (i < line.size() && line[i] == '"') {
        const std::string val = parse_string(line, i, lineno);
        if (key == "ev") r.ev = val;
        else if (key == "kind") r.kind = val;
        else if (key == "site") r.site = val;
      } else {
        const auto [u, v] = parse_number(line, i, lineno);
        if (key == "rank") r.rank = static_cast<int>(v);
        else if (key == "owner") r.owner = static_cast<int>(v);
        else if (key == "seq") r.seq = u;
        else if (key == "handle") r.handle = u;
        else if (key == "epoch") r.epoch = u;
        else if (key == "rlo") r.rlo = u;
        else if (key == "rrows") r.rrows = u;
        else if (key == "rcols") r.rcols = u;
        else if (key == "rld") r.rld = u;
        else if (key == "llo") r.llo = u;
        else if (key == "lrows") r.lrows = u;
        else if (key == "lcols") r.lcols = u;
        else if (key == "lld") r.lld = u;
      }
      skip_ws(line, i);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    SRUMMA_REQUIRE(i < line.size() && line[i] == '}',
                   "journal line " + std::to_string(lineno) +
                       ": expected '}'");
    SRUMMA_REQUIRE(!r.ev.empty(), "journal line " + std::to_string(lineno) +
                                      ": record without an ev field");
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace srumma::trace
