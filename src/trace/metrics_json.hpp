#pragma once
// Machine-readable bench metrics.
//
// Every paper-figure bench prints a human table; this layer additionally
// serializes the underlying MultiplyResult/TraceCounters rows to a stable
// JSON document so the performance trajectory is diffable across PRs
// (scripts/bench_report.sh writes BENCH_fig3.json etc.).
//
// Schema "srumma-bench-metrics/1" (see docs/OBSERVABILITY.md §4):
//   {
//     "schema":  "srumma-bench-metrics/1",
//     "bench":   "<bench id, e.g. fig3>",
//     "rows": [
//       { "label":   "<experiment arm>",
//         "params":  { "<name>": <number>, ... },      // inputs (n, ranks, ...)
//         "metrics": { "<name>": <number>, ... },      // outputs
//         "counters": { ... every TraceCounters field ... }   // multiply rows
//       }, ...
//     ]
//   }
// Multiply rows carry metrics elapsed_s / gflops / overlap plus the full
// team-aggregated counters block; scalar rows (e.g. Fig. 7 overlap
// percentages) carry caller-named metrics and no counters block.  Every
// row additionally carries the harness-speed metrics wall_seconds (real
// time the arm took to simulate) and wall_per_virtual_second (wall /
// modeled virtual seconds; 0 when the row has no virtual duration) so
// simulator throughput is a tracked trajectory alongside modeled perf.
// Fields are only ever added to the schema, never renamed, so
// BENCH_*.json files from different PRs stay comparable.

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "trace/report.hpp"
#include "vtime/trace_counters.hpp"

namespace srumma::trace {

/// Every TraceCounters field as a JSON object (the "counters" block).
[[nodiscard]] std::string counters_json(const TraceCounters& t);

/// Named (key, value) pairs; keys are emitted in insertion order.
using NumberMap = std::vector<std::pair<std::string, double>>;

class MetricsLog {
 public:
  explicit MetricsLog(std::string bench) : bench_(std::move(bench)) {}

  /// A multiply-experiment row: elapsed/gflops/overlap + wall metrics +
  /// full counters.  `wall_seconds` is the measured real time of the arm
  /// (wall_per_virtual_second is derived against r.elapsed).
  void add(const std::string& label, const MultiplyResult& r, NumberMap params,
           double wall_seconds);

  /// A scalar row for benches whose outputs are not MultiplyResults.
  /// `virtual_seconds` is the arm's modeled duration (0 when the row has
  /// no virtual-time denominator).
  void add_metric(const std::string& label, const std::string& metric,
                  double value, NumberMap params, double wall_seconds,
                  double virtual_seconds);

  /// A row with several caller-named metrics and no counters block.
  void add_metrics(const std::string& label, NumberMap metrics,
                   NumberMap params, double wall_seconds,
                   double virtual_seconds);

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string json() const;
  bool write_file(const std::string& path) const;

  /// SRUMMA_BENCH_JSON, or "" when unset — benches call write_env() once at
  /// exit; with the variable unset it is a no-op, so plain bench runs keep
  /// printing tables only.
  [[nodiscard]] static std::string env_path();
  /// Write json() to env_path() when set.  Returns false only on I/O error.
  bool write_env() const;

 private:
  struct Row {
    std::string label;
    NumberMap params;
    NumberMap metrics;
    std::optional<TraceCounters> counters;
  };

  std::string bench_;
  std::vector<Row> rows_;
};

}  // namespace srumma::trace
