#include "trace/report.hpp"

#include <sstream>

namespace srumma {

// Trips when TraceCounters grows: every field must be handled in
// trace_delta below, operator+= (vtime/trace_counters.hpp) and
// counters_json (trace/metrics_json.cpp), with its SUM/MAX aggregation
// documented on the field.
static_assert(sizeof(TraceCounters) == 38 * sizeof(double),
              "TraceCounters changed — update trace_delta, operator+=, "
              "counters_json and the per-field aggregation comments");

TraceCounters trace_delta(const TraceCounters& end, const TraceCounters& start) {
  TraceCounters d;
  d.time_compute = end.time_compute - start.time_compute;
  d.gemm_calls = end.gemm_calls - start.gemm_calls;
  d.flops = end.flops - start.flops;
  d.time_comm = end.time_comm - start.time_comm;
  d.time_wait = end.time_wait - start.time_wait;
  d.time_noise = end.time_noise - start.time_noise;
  d.bytes_shm = end.bytes_shm - start.bytes_shm;
  d.bytes_remote = end.bytes_remote - start.bytes_remote;
  d.bytes_msg = end.bytes_msg - start.bytes_msg;
  d.gets = end.gets - start.gets;
  d.puts = end.puts - start.puts;
  d.sends = end.sends - start.sends;
  d.recvs = end.recvs - start.recvs;
  d.direct_tasks = end.direct_tasks - start.direct_tasks;
  d.copy_tasks = end.copy_tasks - start.copy_tasks;
  // High-water marks are not differenced; the delta carries the end value.
  d.buffer_bytes_peak = end.buffer_bytes_peak;
  d.faults_injected = end.faults_injected - start.faults_injected;
  d.faults_corrupted = end.faults_corrupted - start.faults_corrupted;
  d.faults_delayed = end.faults_delayed - start.faults_delayed;
  d.rma_retries = end.rma_retries - start.rma_retries;
  d.rma_op_timeouts = end.rma_op_timeouts - start.rma_op_timeouts;
  d.rma_domain_dead = end.rma_domain_dead - start.rma_domain_dead;
  d.task_requeues = end.task_requeues - start.task_requeues;
  d.task_reissues = end.task_reissues - start.task_reissues;
  d.shm_fallbacks = end.shm_fallbacks - start.shm_fallbacks;
  d.checksum_redos = end.checksum_redos - start.checksum_redos;
  d.time_recovery = end.time_recovery - start.time_recovery;
  d.cache_hits = end.cache_hits - start.cache_hits;
  d.cache_joins = end.cache_joins - start.cache_joins;
  d.cache_misses = end.cache_misses - start.cache_misses;
  d.cache_bypasses = end.cache_bypasses - start.cache_bypasses;
  d.cache_evictions = end.cache_evictions - start.cache_evictions;
  d.cache_rearms = end.cache_rearms - start.cache_rearms;
  d.cache_refetches = end.cache_refetches - start.cache_refetches;
  d.cache_bytes_saved = end.cache_bytes_saved - start.cache_bytes_saved;
  d.engine_tasks = end.engine_tasks - start.engine_tasks;
  d.tasks_stolen = end.tasks_stolen - start.tasks_stolen;
  d.tasks_adopted = end.tasks_adopted - start.tasks_adopted;
  return d;
}

MultiplyResult collect_result(Rank& me, double start_vt,
                              const TraceCounters& my_start, double flops) {
  Team& team = me.team();
  // Exit barrier: equalizes clocks so elapsed is the true makespan.
  me.barrier();
  team.trace_board(me.id()) = trace_delta(me.trace(), my_start);
  me.barrier();

  MultiplyResult r;
  r.elapsed = me.clock().now() - start_vt;
  for (int rank = 0; rank < team.size(); ++rank) {
    r.trace += team.trace_board(rank);
  }
  r.gflops = r.elapsed > 0.0 ? flops / r.elapsed / 1e9 : 0.0;
  r.overlap = r.trace.overlap();
  // One more barrier so no rank races ahead and overwrites its board slot
  // in a subsequent collective while slower ranks are still summing.
  me.barrier();
  return r;
}

std::string describe(const MultiplyResult& r) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << r.gflops << " GFLOP/s in " << r.elapsed * 1e3 << " ms, overlap "
     << r.overlap * 100.0 << "%, traffic shm "
     << static_cast<double>(r.trace.bytes_shm) / 1e6 << " MB / remote "
     << static_cast<double>(r.trace.bytes_remote) / 1e6 << " MB / msg "
     << static_cast<double>(r.trace.bytes_msg) / 1e6 << " MB";
  const TraceCounters& t = r.trace;
  if (t.faults_injected + t.faults_corrupted + t.faults_delayed +
          t.rma_retries + t.rma_op_timeouts + t.task_requeues +
          t.task_reissues + t.shm_fallbacks + t.checksum_redos >
      0) {
    os << ", recovery: " << t.faults_injected << " failed / "
       << t.faults_corrupted << " corrupted / " << t.faults_delayed
       << " delayed ops, " << t.rma_retries << " retries ("
       << t.rma_op_timeouts << " op-timeouts), " << t.task_requeues
       << " task requeues, " << t.task_reissues << " fetch reissues, "
       << t.shm_fallbacks << " shm fallbacks, "
       << t.checksum_redos << " checksum redos, "
       << t.time_recovery * 1e3 << " ms in recovery";
  }
  if (t.cache_hits + t.cache_joins + t.cache_misses + t.cache_rearms > 0) {
    os << ", cache: " << t.cache_hits << " hits / " << t.cache_joins
       << " joins / " << t.cache_misses << " misses ("
       << t.cache_evictions << " evictions, " << t.cache_rearms
       << " rearms, " << t.cache_refetches << " refetches), saved "
       << static_cast<double>(t.cache_bytes_saved) / 1e6 << " MB remote";
  }
  if (t.engine_tasks + t.tasks_stolen > 0) {
    os << ", engine: " << t.engine_tasks << " owner tasks / "
       << t.tasks_stolen << " stolen";
  }
  if (t.rma_domain_dead + t.tasks_adopted > 0) {
    os << ", fail-stop: " << t.rma_domain_dead << " ops drained dead, "
       << t.tasks_adopted << " tasks adopted";
  }
  return os.str();
}

}  // namespace srumma
