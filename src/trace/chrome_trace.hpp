#pragma once
// Chrome-trace / Perfetto JSON exporter for the structured tracer.
//
// Produces the Trace Event Format JSON object that chrome://tracing and
// https://ui.perfetto.dev load directly.  Mapping (documented in
// docs/OBSERVABILITY.md):
//   * pid   = physical node, tid = rank — Perfetto groups rank tracks
//     under their node, which is exactly the paper's cluster topology;
//   * CPU phases (multiply/task/dgemm/wait/backoff/...) are "X" complete
//     events — strictly nested in virtual time on each rank's track;
//   * in-flight communication (nbget/nbput/nbacc/send/recv) exports as
//     async "b"/"e" pairs with unique ids, so overlapping transfers
//     stack instead of corrupting the CPU track;
//   * instants (task issue, requeue, fault, retry, ...) are "i" events;
//   * counter tracks (inflight bytes/ops, recovery seconds) are "C"
//     events, one named series per rank.
// Timestamps are *virtual* microseconds (ts = virtual seconds * 1e6).

#include <iosfwd>
#include <string>

#include "trace/tracer.hpp"

namespace srumma::trace {

/// Stream the whole trace as one Chrome-trace JSON object.
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Write to `path`; returns false (after printing nothing) when the file
/// cannot be opened.  An existing file is overwritten.
bool write_chrome_trace_file(const std::string& path, const Tracer& tracer);

}  // namespace srumma::trace
