#include "trace/metrics_json.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace srumma::trace {

namespace {

std::string num(double v) {
  std::ostringstream os;
  // 17 significant digits: doubles round-trip exactly, so cross-mode
  // bitwise-identity checks (bench_scale pooled vs threads) can compare
  // serialized metrics directly.
  os.precision(17);
  os << v;
  return os.str();
}

// wall / virtual; 0 when the row has no virtual-time denominator.
double wall_per_vs(double wall_seconds, double virtual_seconds) {
  return virtual_seconds > 0.0 ? wall_seconds / virtual_seconds : 0.0;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void emit_map(std::ostream& os, const NumberMap& m) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    os << (first ? "" : ",") << "\"" << escape(k) << "\":" << num(v);
    first = false;
  }
  os << "}";
}

}  // namespace

std::string counters_json(const TraceCounters& t) {
  // Keep in lockstep with TraceCounters (the sizeof guard in
  // trace/report.cpp trips when a field is added without updating the
  // serializers).
  std::ostringstream os;
  os << "{"
     << "\"time_compute\":" << num(t.time_compute)
     << ",\"gemm_calls\":" << t.gemm_calls
     << ",\"flops\":" << num(t.flops)
     << ",\"time_comm\":" << num(t.time_comm)
     << ",\"time_wait\":" << num(t.time_wait)
     << ",\"time_noise\":" << num(t.time_noise)
     << ",\"bytes_shm\":" << t.bytes_shm
     << ",\"bytes_remote\":" << t.bytes_remote
     << ",\"bytes_msg\":" << t.bytes_msg
     << ",\"gets\":" << t.gets
     << ",\"puts\":" << t.puts
     << ",\"sends\":" << t.sends
     << ",\"recvs\":" << t.recvs
     << ",\"direct_tasks\":" << t.direct_tasks
     << ",\"copy_tasks\":" << t.copy_tasks
     << ",\"buffer_bytes_peak\":" << t.buffer_bytes_peak
     << ",\"faults_injected\":" << t.faults_injected
     << ",\"faults_corrupted\":" << t.faults_corrupted
     << ",\"faults_delayed\":" << t.faults_delayed
     << ",\"rma_retries\":" << t.rma_retries
     << ",\"rma_op_timeouts\":" << t.rma_op_timeouts
     << ",\"rma_domain_dead\":" << t.rma_domain_dead
     << ",\"task_requeues\":" << t.task_requeues
     << ",\"task_reissues\":" << t.task_reissues
     << ",\"shm_fallbacks\":" << t.shm_fallbacks
     << ",\"checksum_redos\":" << t.checksum_redos
     << ",\"time_recovery\":" << num(t.time_recovery)
     << ",\"cache_hits\":" << t.cache_hits
     << ",\"cache_joins\":" << t.cache_joins
     << ",\"cache_misses\":" << t.cache_misses
     << ",\"cache_bypasses\":" << t.cache_bypasses
     << ",\"cache_evictions\":" << t.cache_evictions
     << ",\"cache_rearms\":" << t.cache_rearms
     << ",\"cache_refetches\":" << t.cache_refetches
     << ",\"cache_bytes_saved\":" << t.cache_bytes_saved
     << ",\"engine_tasks\":" << t.engine_tasks
     << ",\"tasks_stolen\":" << t.tasks_stolen
     << ",\"tasks_adopted\":" << t.tasks_adopted
     << "}";
  return os.str();
}

void MetricsLog::add(const std::string& label, const MultiplyResult& r,
                     NumberMap params, double wall_seconds) {
  Row row;
  row.label = label;
  row.params = std::move(params);
  row.metrics = {{"elapsed_s", r.elapsed},
                 {"gflops", r.gflops},
                 {"overlap", r.overlap},
                 {"wall_seconds", wall_seconds},
                 {"wall_per_virtual_second", wall_per_vs(wall_seconds, r.elapsed)}};
  row.counters = r.trace;
  rows_.push_back(std::move(row));
}

void MetricsLog::add_metric(const std::string& label, const std::string& metric,
                            double value, NumberMap params, double wall_seconds,
                            double virtual_seconds) {
  add_metrics(label, {{metric, value}}, std::move(params), wall_seconds,
              virtual_seconds);
}

void MetricsLog::add_metrics(const std::string& label, NumberMap metrics,
                             NumberMap params, double wall_seconds,
                             double virtual_seconds) {
  Row row;
  row.label = label;
  row.params = std::move(params);
  row.metrics = std::move(metrics);
  row.metrics.emplace_back("wall_seconds", wall_seconds);
  row.metrics.emplace_back("wall_per_virtual_second",
                           wall_per_vs(wall_seconds, virtual_seconds));
  rows_.push_back(std::move(row));
}

std::string MetricsLog::json() const {
  std::ostringstream os;
  os << "{\"schema\":\"srumma-bench-metrics/1\",\"bench\":\""
     << escape(bench_) << "\",\"rows\":[";
  bool first = true;
  for (const Row& row : rows_) {
    os << (first ? "" : ",") << "\n  {\"label\":\"" << escape(row.label)
       << "\",\"params\":";
    emit_map(os, row.params);
    os << ",\"metrics\":";
    emit_map(os, row.metrics);
    if (row.counters) {
      os << ",\"counters\":" << counters_json(*row.counters);
    }
    os << "}";
    first = false;
  }
  os << "\n]}\n";
  return os.str();
}

bool MetricsLog::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << json();
  return static_cast<bool>(f);
}

std::string MetricsLog::env_path() {
  const char* p = std::getenv("SRUMMA_BENCH_JSON");
  return p != nullptr ? std::string(p) : std::string();
}

bool MetricsLog::write_env() const {
  const std::string path = env_path();
  if (path.empty()) return true;
  return write_file(path);
}

}  // namespace srumma::trace
