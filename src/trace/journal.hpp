#pragma once
// JSONL event journal for the shadow-state RMA checker (docs/ANALYSIS.md).
//
// When SRUMMA_RMA_JOURNAL=<path> is set (and the checker is enabled), the
// checker appends one flat JSON object per observed event: op issues with
// their exact strided footprints, waits, barriers, allocation lifecycle and
// every diagnostic it raised.  `srumma-analyze --trace` replays the stream
// through an independent happens-before race detector and cross-validates
// the epoch model: an HB race with no matching recorded diagnostic is a
// hard failure.
//
// The format is deliberately flat (string and unsigned-integer values only,
// no nesting) so the reader below stays a ~100-line tolerant scanner with
// no JSON library dependency.  Unknown keys are ignored, which lets the
// writer grow fields without breaking old readers.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace srumma::trace {

/// One journal line.  `ev` discriminates:
///   "op"      an issued operation or declaration (kind = get/put/acc/
///             direct-read/compute-read/local-write); handle == 0 means it
///             completed synchronously (declarations, cache shared reads)
///   "wait"    a wait() call on `handle` by `rank`
///   "barrier" `rank` entered a barrier (closes its epoch)
///   "alloc"   symmetric region `seq` registered (rrows = segment bytes)
///   "free"    symmetric region `seq` freed by `rank`
///   "diag"    a checker diagnostic (kind = diagnostic name; the remote
///             footprint degenerates to the reported [lo, hi) interval)
struct JournalRecord {
  std::string ev;
  int rank = -1;
  std::string kind;
  int owner = -1;
  std::uint64_t seq = ~std::uint64_t{0};
  std::uint64_t handle = 0;
  std::uint64_t epoch = 0;
  // Remote footprint: byte offsets within the owner segment (empty when
  // rcols == 0 or rrows == 0).
  std::uint64_t rlo = 0, rrows = 0, rcols = 0, rld = 0;
  // Local (origin-buffer) footprint: absolute addresses.
  std::uint64_t llo = 0, lrows = 0, lcols = 0, lld = 0;
  std::string site;
};

/// Append-mode JSONL writer.  The first writer a process opens for a given
/// path truncates it (one journal per run); later writers — one RmaChecker
/// per runtime, and A/B/C may live on distinct runtimes — append to the
/// same stream.  record() is internally serialized.
class JournalWriter {
 public:
  explicit JournalWriter(const std::string& path);
  [[nodiscard]] bool ok() const { return out_.is_open(); }
  void record(const JournalRecord& r);

 private:
  std::mutex mu_;
  std::ofstream out_;
};

/// $SRUMMA_RMA_JOURNAL, or "" when journaling is off.
[[nodiscard]] std::string journal_env_path();

/// Parse a journal file.  Throws srumma::Error on unreadable files or
/// malformed lines; unknown keys are skipped.
[[nodiscard]] std::vector<JournalRecord> read_journal(const std::string& path);

}  // namespace srumma::trace
