#include "trace/tracer.hpp"

#include <cstdlib>

namespace srumma::trace {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Multiply: return "multiply";
    case Phase::Task: return "task";
    case Phase::Compute: return "dgemm";
    case Phase::Wait: return "wait";
    case Phase::RecoveryWait: return "wait (failed attempt)";
    case Phase::Backoff: return "retry backoff";
    case Phase::Redo: return "checksum redo";
    case Phase::Barrier: return "barrier";
    case Phase::Noise: return "os noise";
    case Phase::Steal: return "steal";
    case Phase::Handback: return "handback";
    case Phase::Get: return "nbget";
    case Phase::Put: return "nbput";
    case Phase::Acc: return "nbacc";
    case Phase::Send: return "send";
    case Phase::Recv: return "recv";
    case Phase::CacheRead: return "cache read";
    case Phase::TaskIssue: return "task issue";
    case Phase::TaskReady: return "task ready";
    case Phase::TaskSteal: return "task stolen";
    case Phase::TaskRearm: return "task rearm";
    case Phase::Requeue: return "task requeue";
    case Phase::ShmFallback: return "shm fallback";
    case Phase::Fault: return "fault injected";
    case Phase::OpTimeout: return "op timeout";
    case Phase::Retry: return "retry";
    case Phase::Epoch: return "epoch";
    case Phase::CacheHit: return "cache hit";
    case Phase::CacheJoin: return "cache join";
    case Phase::CacheEvict: return "cache evict";
    case Phase::CacheRearm: return "cache rearm";
    case Phase::CacheRefetch: return "cache refetch";
    case Phase::DomainDead: return "domain dead";
    case Phase::Adopt: return "adopt";
    case Phase::Job: return "job";
    case Phase::JobWait: return "job wait";
    case Phase::JobArrive: return "job arrive";
    case Phase::JobReject: return "job reject";
    case Phase::JobRetry: return "job retry";
  }
  return "?";
}

const char* counter_name(CounterId c) {
  switch (c) {
    case CounterId::InflightBytes: return "inflight bytes";
    case CounterId::InflightOps: return "inflight ops";
    case CounterId::RecoverySeconds: return "recovery seconds";
    case CounterId::CacheBytesSaved: return "cache bytes saved";
  }
  return "?";
}

std::optional<TracerConfig> TracerConfig::from_env() {
  const char* path = std::getenv("SRUMMA_TRACE");
  if (path == nullptr || *path == '\0') return std::nullopt;
  TracerConfig cfg;
  cfg.path = path;
  if (const char* cap = std::getenv("SRUMMA_TRACE_CAP")) {
    const long v = std::strtol(cap, nullptr, 10);
    if (v > 0) cfg.ring_capacity = static_cast<std::size_t>(v);
  }
  return cfg;
}

Tracer::Tracer(std::vector<TrackInfo> tracks, TracerConfig cfg)
    : cfg_(std::move(cfg)), cap_(cfg_.ring_capacity) {
  SRUMMA_REQUIRE(!tracks.empty(), "tracer: need at least one rank");
  SRUMMA_REQUIRE(cap_ >= 1, "tracer: ring capacity must be positive");
  tracks_.resize(tracks.size());
  for (std::size_t r = 0; r < tracks.size(); ++r) {
    tracks_[r].info = tracks[r];
    tracks_[r].ring.reserve(std::min<std::size_t>(cap_, 1024));
  }
}

std::vector<TraceEvent> Tracer::events(int rank) const {
  const Track& tr = tracks_[checked(rank)];
  std::vector<TraceEvent> out;
  out.reserve(tr.ring.size());
  // Oldest first: [head, end) then [0, head) once the ring has wrapped.
  for (std::size_t i = tr.head; i < tr.ring.size(); ++i)
    out.push_back(tr.ring[i]);
  for (std::size_t i = 0; i < tr.head; ++i) out.push_back(tr.ring[i]);
  return out;
}

void Tracer::clear() {
  for (Track& tr : tracks_) {
    tr.ring.clear();
    tr.head = 0;
    tr.recorded = 0;
    for (double& c : tr.counters) c = 0.0;
  }
}

}  // namespace srumma::trace
