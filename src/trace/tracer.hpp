#pragma once
// Structured event tracer: per-rank ring buffers of virtual-time spans,
// instants and counter samples.
//
// The post-hoc aggregates in TraceCounters answer "how much time went
// where"; this tracer answers "when, and in what order" — which task's get
// stalled behind the straggler node, how deep the in-flight pipeline
// actually ran, where a retry backoff landed relative to the dgemm it was
// hiding behind.  Every record is stamped with the issuing rank's virtual
// clock, so a trace is as deterministic as the run that produced it.
//
// Design constraints (see docs/OBSERVABILITY.md):
//   * zero perturbation — recording reads clocks, never advances them, so
//     an enabled tracer changes no modeled time;
//   * one branch when off — every hook in the runtime is guarded by a
//     single `if (Tracer* tr = team.tracer())` null test, the same pattern
//     as the RMA checker and the fault plane;
//   * rank-private storage — a rank only ever records its own events, so
//     the hot path takes no locks (the Timeline precedent);
//   * bounded memory — each rank writes a fixed-capacity ring; overflow
//     overwrites the *oldest* events and is counted, never reallocates.
//
// Activation: programmatically via Team::enable_tracer(TracerConfig), or
// from the environment — SRUMMA_TRACE=<path> arms every Team in the
// process and writes a Chrome-trace JSON (see chrome_trace.hpp) for that
// team's events when the Team is destroyed (or flush_trace() is called).
// SRUMMA_TRACE_CAP overrides the per-rank ring capacity.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "vtime/clock.hpp"

namespace srumma::trace {

/// Event taxonomy.  CPU phases are strictly nested in virtual time on one
/// rank (Multiply > Task > Compute/Wait/RecoveryWait/Backoff/Redo, with
/// Barrier and Noise interleaving at the same level); comm phases
/// (Get/Put/Acc/Send/Recv) are in-flight intervals that overlap CPU phases
/// and each other, and export as async tracks.  The remaining phases are
/// instants.
enum class Phase : std::uint8_t {
  // -- CPU spans -------------------------------------------------------------
  Multiply,      ///< one srumma_multiply collective, entry to exit barrier
  Task,          ///< one pipeline task: operand wait + verify + dgemm
  Compute,       ///< a charged dgemm (any algorithm)
  Wait,          ///< clock blocked on a completion that delivered
  RecoveryWait,  ///< clock blocked on an attempt that failed / timed out
  Backoff,       ///< retry backoff pause before a re-issue
  Redo,          ///< checksum-verification refetch of a corrupt patch
  Barrier,       ///< time in a barrier beyond own arrival
  Noise,         ///< injected OS daemon preemption
  Steal,         ///< thief-side execution of a stolen task (fetch -> gemm
                 ///< -> handback publish; arg = victim's task index)
  Handback,      ///< owner-side commit of a stolen C tile (wait for the
                 ///< thief's publish + intra-domain copy-back)
  // -- in-flight communication spans ----------------------------------------
  Get,   ///< one-sided get, issue -> modeled completion
  Put,   ///< one-sided put
  Acc,   ///< one-sided accumulate
  Send,  ///< two-sided send, issue -> delivery
  Recv,  ///< two-sided receive, post -> delivery
  CacheRead,  ///< intra-domain copy out of the cooperative block cache
  // -- instants --------------------------------------------------------------
  TaskIssue,    ///< pipeline issued a task's fetches (arg = task index)
  TaskReady,    ///< engine task's operands all landed (arg = task index)
  TaskSteal,    ///< engine task claimed by an idle domain mate (arg = index)
  TaskRearm,    ///< engine marked a task not-ready and re-armed its failed
                ///< operand fetches (the engine's requeue replacement)
  Requeue,      ///< task re-enqueued at the tail after operand failure
  ShmFallback,  ///< Direct -> Copy operand degradation (dead domain)
  Fault,        ///< transient transfer failure injected
  OpTimeout,    ///< attempt abandoned (or counted) by the per-op deadline
  Retry,        ///< re-issue performed by a wait (arg = prior attempts)
  Epoch,        ///< checker access epoch advanced (barrier entry)
  CacheHit,     ///< block-cache entry already ready at request time
  CacheJoin,    ///< joined a cache fetch still in flight (virtual time)
  CacheEvict,   ///< LRU eviction under capacity pressure
  CacheRearm,   ///< dirty (failed-fetch) entry re-armed by a waiter
  CacheRefetch,  ///< ready entry published later (virtual time) than the
                 ///< request — causality forbids sharing; own get issued
  DomainDead,    ///< handle drained with RmaStatus::DomainDead (arg = the
                 ///< declared-dead domain id)
  Adopt,         ///< survivor-side replay of one adopted task from the
                 ///< buddy replicas (span; arg = dead owner's rank id)
  // -- request plane (src/service; tracks are parent NODES, not ranks) -------
  Job,       ///< span: one serviced job, dispatch to completion (arg = id)
  JobWait,   ///< span: queue wait, admission to dispatch (arg = job id)
  JobArrive,  ///< instant: job accepted into the waiting queue (arg = id)
  JobReject,  ///< instant: job shed by admission control (arg = job id)
  JobRetry,   ///< instant: failed attempt re-dispatched on a fresh
              ///< sub-team (arg = job id)
};

[[nodiscard]] const char* phase_name(Phase p);

/// Per-rank counter tracks sampled on change.
enum class CounterId : std::uint8_t {
  InflightBytes,    ///< bytes of issued, not-yet-consumed one-sided ops
  InflightOps,      ///< queue depth of issued, not-yet-consumed ops
  RecoverySeconds,  ///< running TraceCounters::time_recovery
  CacheBytesSaved,  ///< running TraceCounters::cache_bytes_saved
};
inline constexpr int kNumCounters = 4;

[[nodiscard]] const char* counter_name(CounterId c);

enum class EvType : std::uint8_t { Span, Instant, Counter };

struct TraceEvent {
  double t0 = 0.0;     ///< virtual seconds (instants/counters: t0 == t1)
  double t1 = 0.0;
  double value = 0.0;  ///< counter sample value (Counter events only)
  std::uint64_t arg = 0;  ///< bytes / task index / attempt count
  Phase phase = Phase::Multiply;
  CounterId counter = CounterId::InflightBytes;
  EvType type = EvType::Span;
};

struct TracerConfig {
  /// Chrome-trace output path written by Team::flush_trace() / ~Team.
  /// Empty = record only (tests and programmatic consumers read events()).
  std::string path;
  /// Ring capacity in events per rank; oldest events are overwritten (and
  /// counted in dropped()) once a rank exceeds it.
  std::size_t ring_capacity = 1u << 16;

  /// SRUMMA_TRACE=<path> (+ optional SRUMMA_TRACE_CAP=<events>); nullopt
  /// when the environment does not ask for tracing.
  [[nodiscard]] static std::optional<TracerConfig> from_env();
};

/// Static per-rank track identity, stamped once at construction so the
/// exporter needs no machine model.
struct TrackInfo {
  int node = 0;
  int domain = 0;
};

class Tracer {
 public:
  Tracer(std::vector<TrackInfo> tracks, TracerConfig cfg);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] int ranks() const noexcept {
    return static_cast<int>(tracks_.size());
  }
  [[nodiscard]] const TracerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const TrackInfo& track(int rank) const {
    return tracks_[checked(rank)].info;
  }

  // -- hot path (rank-private: callers record only their own rank) -----------

  void span(int rank, Phase ph, double t0, double t1, std::uint64_t arg = 0) {
    TraceEvent e;
    e.t0 = t0;
    e.t1 = t1;
    e.arg = arg;
    e.phase = ph;
    e.type = EvType::Span;
    push(rank, e);
  }

  void instant(int rank, Phase ph, double t, std::uint64_t arg = 0) {
    TraceEvent e;
    e.t0 = t;
    e.t1 = t;
    e.arg = arg;
    e.phase = ph;
    e.type = EvType::Instant;
    push(rank, e);
  }

  /// Adjust a per-rank running counter by `delta` and sample the new value.
  void counter_add(int rank, CounterId c, double t, double delta) {
    Track& tr = tracks_[checked(rank)];
    tr.counters[static_cast<std::size_t>(c)] += delta;
    sample(tr, rank, c, t);
  }

  /// Overwrite a per-rank counter and sample it.
  void counter_set(int rank, CounterId c, double t, double value) {
    Track& tr = tracks_[checked(rank)];
    tr.counters[static_cast<std::size_t>(c)] = value;
    sample(tr, rank, c, t);
  }

  [[nodiscard]] double counter_value(int rank, CounterId c) const {
    return tracks_[checked(rank)].counters[static_cast<std::size_t>(c)];
  }

  // -- inspection (call only when the recording ranks are quiescent) ---------

  /// Total record calls on this rank's track (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded(int rank) const {
    return tracks_[checked(rank)].recorded;
  }
  /// Events lost to ring overflow (oldest-first overwrite policy).
  [[nodiscard]] std::uint64_t dropped(int rank) const {
    const Track& tr = tracks_[checked(rank)];
    return tr.recorded - tr.ring.size();
  }
  /// Surviving events in record order (oldest first, unwrapping the ring).
  [[nodiscard]] std::vector<TraceEvent> events(int rank) const;

  /// Drop all events and reset counters; track identities are kept.
  void clear();

 private:
  struct Track {
    std::vector<TraceEvent> ring;  // grows to cap_, then wraps at head
    std::size_t head = 0;          // next overwrite position once full
    std::uint64_t recorded = 0;
    double counters[kNumCounters] = {};
    TrackInfo info;
  };

  [[nodiscard]] std::size_t checked(int rank) const {
    SRUMMA_REQUIRE(rank >= 0 && rank < ranks(), "tracer: rank out of range");
    return static_cast<std::size_t>(rank);
  }

  void push(int rank, const TraceEvent& e) {
    Track& tr = tracks_[checked(rank)];
    ++tr.recorded;
    if (tr.ring.size() < cap_) {
      tr.ring.push_back(e);
    } else {
      tr.ring[tr.head] = e;
      tr.head = (tr.head + 1) % cap_;
    }
  }

  void sample(Track& tr, int rank, CounterId c, double t) {
    TraceEvent e;
    e.t0 = t;
    e.t1 = t;
    e.value = tr.counters[static_cast<std::size_t>(c)];
    e.counter = c;
    e.type = EvType::Counter;
    push(rank, e);
  }

  TracerConfig cfg_;
  std::size_t cap_;
  std::vector<Track> tracks_;
};

/// RAII span: stamps t0 at construction and records [t0, clock.now()] when
/// the scope exits (exception-safe).  Null tracer = fully inert.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, int rank, Phase ph, VClock& clock,
            std::uint64_t arg = 0)
      : tracer_(tracer), clock_(&clock), rank_(rank), arg_(arg), phase_(ph) {
    if (tracer_ != nullptr) t0_ = clock_->now();
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->span(rank_, phase_, t0_, clock_->now(), arg_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_;
  VClock* clock_;
  int rank_;
  std::uint64_t arg_;
  Phase phase_;
  double t0_ = 0.0;
};

}  // namespace srumma::trace
