#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "core/srumma.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/grid.hpp"
#include "trace/chrome_trace.hpp"
#include "util/error.hpp"

namespace srumma::service {

namespace {

double env_double(const char* name, double dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  char* end = nullptr;
  const double x = std::strtod(v, &end);
  SRUMMA_REQUIRE(end != v, std::string(name) + ": not a number");
  return x;
}

int env_int(const char* name, int dflt) {
  return static_cast<int>(env_double(name, static_cast<double>(dflt)));
}

/// One attempt of one job on a fresh sub-team of `lease.nodes` nodes —
/// the single execution path shared by the service and run_standalone, so
/// the bitwise-identity contract is by construction, not by replication.
/// `attempt` reseeds a config-installed fault plane so retries do not
/// deterministically replay the injected failure.  `*makespan` receives
/// the sub-team's modeled parallel time even when the run throws.
MultiplyResult attempt_job(const MachineModel& machine, NodeLease lease,
                           const JobSpec& spec, const ServiceConfig& cfg,
                           int attempt, double* makespan) {
  SubTeam st(machine, lease);
  RmaConfig rc = cfg.rma;
  if (rc.faults && attempt > 0) {
    rc.faults->seed += static_cast<std::uint64_t>(attempt);
  }
  RmaRuntime rma(st.team(), rc);
  SrummaOptions opt = cfg.multiply;
  opt.ta = spec.ta;
  opt.tb = spec.tb;
  opt.alpha = spec.alpha;
  opt.beta = spec.beta;
  const ProcGrid grid = ProcGrid::near_square(st.ranks());
  const bool tra = spec.ta == blas::Trans::Yes;
  const bool trb = spec.tb == blas::Trans::Yes;
  MultiplyResult out;
  try {
    st.team().run([&](Rank& me) {
      DistMatrix a(rma, me, tra ? spec.k : spec.m, tra ? spec.m : spec.k, grid,
                   spec.phantom);
      DistMatrix b(rma, me, trb ? spec.n : spec.k, trb ? spec.k : spec.n, grid,
                   spec.phantom);
      DistMatrix c(rma, me, spec.m, spec.n, grid, spec.phantom);
      if (!spec.phantom) {
        a.scatter_from(me, spec.a);
        b.scatter_from(me, spec.b);
        c.scatter_from(me, ConstMatrixView(spec.c));
      }
      const MultiplyResult r = srumma_multiply(me, a, b, c, opt);
      if (!spec.phantom) c.gather_to(me, spec.c);
      if (me.id() == 0) out = r;
    });
  } catch (...) {
    // A failed attempt still consumed the lease for its modeled duration.
    // Peers abort at their next cancellation point, so the failure-side
    // makespan (unlike every successful result) may vary run to run —
    // the same caveat the engine documents for steal timing.
    *makespan = st.team().max_clock();
    throw;
  }
  *makespan = st.team().max_clock();
  return out;
}

std::vector<trace::TrackInfo> node_tracks(const MachineModel& machine) {
  std::vector<trace::TrackInfo> tracks(
      static_cast<std::size_t>(machine.num_nodes));
  for (int i = 0; i < machine.num_nodes; ++i) {
    tracks[static_cast<std::size_t>(i)] = {i, machine.domain_of(
                                                  i * machine.ranks_per_node)};
  }
  return tracks;
}

trace::TracerConfig service_tracer_config(const ServiceConfig& cfg) {
  trace::TracerConfig tc;
  tc.path = cfg.trace_path;
  return tc;
}

}  // namespace

const char* priority_name(JobPriority p) {
  switch (p) {
    case JobPriority::Low: return "low";
    case JobPriority::Normal: return "normal";
    case JobPriority::High: return "high";
  }
  return "?";
}

const char* reject_name(RejectReason r) {
  switch (r) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue full";
    case RejectReason::ShuttingDown: return "shutting down";
    case RejectReason::BadShape: return "bad shape";
  }
  return "?";
}

const char* state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Rejected: return "rejected";
  }
  return "?";
}

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig cfg;
  cfg.queue_cap = env_int("SRUMMA_SERVICE_QUEUE_CAP", cfg.queue_cap);
  cfg.max_inflight = env_int("SRUMMA_SERVICE_MAX_INFLIGHT", cfg.max_inflight);
  cfg.flops_per_node =
      env_double("SRUMMA_SERVICE_FLOPS_PER_NODE", cfg.flops_per_node);
  cfg.batch_flops = env_double("SRUMMA_SERVICE_BATCH_FLOPS", cfg.batch_flops);
  cfg.batch_max = env_int("SRUMMA_SERVICE_BATCH_MAX", cfg.batch_max);
  cfg.retries = env_int("SRUMMA_SERVICE_RETRIES", cfg.retries);
  cfg.age_boost = env_double("SRUMMA_SERVICE_AGE_BOOST", cfg.age_boost);
  if (const char* p = std::getenv("SRUMMA_SERVICE_TRACE");
      p != nullptr && *p != '\0') {
    cfg.trace_path = p;
  }
  SRUMMA_REQUIRE(cfg.queue_cap >= 0 && cfg.max_inflight >= 0 &&
                     cfg.flops_per_node > 0 && cfg.batch_flops >= 0 &&
                     cfg.batch_max >= 1 && cfg.retries >= 0 &&
                     cfg.age_boost >= 0,
                 "SRUMMA_SERVICE_*: knob out of range");
  return cfg;
}

GemmService::GemmService(MachineModel machine, ServiceConfig cfg)
    : machine_(std::move(machine)),
      cfg_(std::move(cfg)),
      partition_(machine_.num_nodes),
      tracer_(node_tracks(machine_), service_tracer_config(cfg_)) {
  SRUMMA_REQUIRE(cfg_.flops_per_node > 0, "flops_per_node must be positive");
  SRUMMA_REQUIRE(cfg_.batch_max >= 1, "batch_max must be at least 1");
  SRUMMA_REQUIRE(cfg_.retries >= 0, "retries must be non-negative");
}

SubmitResult GemmService::submit(const JobSpec& spec, double arrival_vt) {
  SRUMMA_REQUIRE(arrival_vt >= last_arrival_,
                 "submit: arrival times must be non-decreasing");
  last_arrival_ = arrival_vt;
  advance_to(arrival_vt);

  Entry e;
  e.spec = spec;
  e.rep.id = jobs_.size() + 1;
  e.rep.label = spec.label;
  e.rep.priority = spec.priority;
  e.rep.arrival_vt = arrival_vt;

  SubmitResult res;
  res.id = e.rep.id;
  const bool shape_ok =
      spec.m >= 1 && spec.n >= 1 && spec.k >= 1 &&
      (spec.phantom ||
       (spec.a.rows() == (spec.ta == blas::Trans::Yes ? spec.k : spec.m) &&
        spec.a.cols() == (spec.ta == blas::Trans::Yes ? spec.m : spec.k) &&
        spec.b.rows() == (spec.tb == blas::Trans::Yes ? spec.n : spec.k) &&
        spec.b.cols() == (spec.tb == blas::Trans::Yes ? spec.k : spec.n) &&
        spec.c.rows() == spec.m && spec.c.cols() == spec.n));
  if (!shape_ok) {
    res.reject = RejectReason::BadShape;
  } else if (closed_) {
    res.reject = RejectReason::ShuttingDown;
  } else if (cfg_.queue_cap > 0 &&
             static_cast<int>(waiting_.size()) >= cfg_.queue_cap) {
    res.reject = RejectReason::QueueFull;
  }
  if (res.reject != RejectReason::None) {
    e.rep.state = JobState::Rejected;
    e.rep.reject = res.reject;
    e.rep.completion_vt = arrival_vt;
    tracer_.instant(0, trace::Phase::JobReject, arrival_vt, e.rep.id);
    jobs_.push_back(std::move(e));
    return res;
  }

  res.accepted = true;
  e.rep.state = JobState::Queued;
  tracer_.instant(0, trace::Phase::JobArrive, arrival_vt, e.rep.id);
  jobs_.push_back(std::move(e));
  waiting_.push_back(res.id);
  try_dispatch();
  return res;
}

void GemmService::drain() {
  try_dispatch();
  while (!inflight_.empty()) {
    const Dispatch d = inflight_.top();
    inflight_.pop();
    now_ = std::max(now_, d.end_vt);
    partition_.release(d.lease);
    try_dispatch();
  }
  SRUMMA_REQUIRE(waiting_.empty(), "drain: jobs stranded in the queue");
}

void GemmService::advance_to(double vt) {
  while (!inflight_.empty() && inflight_.top().end_vt <= vt) {
    const Dispatch d = inflight_.top();
    inflight_.pop();
    now_ = std::max(now_, d.end_vt);
    partition_.release(d.lease);
    try_dispatch();
  }
  now_ = std::max(now_, vt);
}

int GemmService::nodes_for(const JobSpec& spec) const {
  if (cfg_.serialize) return machine_.num_nodes;
  const double need = std::ceil(spec.flops() / cfg_.flops_per_node);
  return std::clamp(static_cast<int>(need), 1, machine_.num_nodes);
}

void GemmService::try_dispatch() {
  const int cap_inflight =
      cfg_.serialize
          ? 1
          : (cfg_.max_inflight > 0 ? cfg_.max_inflight
                                   : std::numeric_limits<int>::max());
  const bool batching = !cfg_.serialize && cfg_.batch_flops > 0;
  while (!waiting_.empty() &&
         static_cast<int>(inflight_.size()) < cap_inflight) {
    // Policy order at the current instant: effective priority (class +
    // aging) descending, then earliest deadline, then arrival, then id.
    std::vector<std::uint64_t> order = waiting_;
    auto eff = [&](std::uint64_t id) {
      const Entry& e = entry(id);
      int boost = 0;
      if (cfg_.age_boost > 0) {
        boost = static_cast<int>((now_ - e.rep.arrival_vt) / cfg_.age_boost);
      }
      return static_cast<int>(e.spec.priority) + boost;
    };
    auto deadline = [&](std::uint64_t id) {
      const Entry& e = entry(id);
      return e.spec.deadline_hint > 0
                 ? e.rep.arrival_vt + e.spec.deadline_hint
                 : std::numeric_limits<double>::infinity();
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint64_t x, std::uint64_t y) {
                       const int ex = eff(x);
                       const int ey = eff(y);
                       if (ex != ey) return ex > ey;
                       const double dx = deadline(x);
                       const double dy = deadline(y);
                       if (dx != dy) return dx < dy;
                       const double ax = entry(x).rep.arrival_vt;
                       const double ay = entry(y).rep.arrival_vt;
                       if (ax != ay) return ax < ay;
                       return x < y;
                     });
    // The head dispatches or blocks; no backfill past a blocked head.
    std::vector<std::uint64_t> members{order.front()};
    int needed = nodes_for(entry(order.front()).spec);
    if (batching && entry(order.front()).spec.flops() < cfg_.batch_flops) {
      // Batch a contiguous scan-order run of small jobs (stopping at the
      // first non-batchable one — picking past it would be backfill).
      for (std::size_t i = 1; i < order.size() &&
                              static_cast<int>(members.size()) < cfg_.batch_max;
           ++i) {
        if (entry(order[i]).spec.flops() >= cfg_.batch_flops) break;
        members.push_back(order[i]);
        needed = std::max(needed, nodes_for(entry(order[i]).spec));
      }
    }
    const std::optional<NodeLease> lease = partition_.acquire(needed);
    if (!lease) return;  // blocked: leave every lower-priority job queued
    for (std::uint64_t id : members) {
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
    }
    const double end = execute(now_, *lease, members);
    Dispatch d;
    d.end_vt = end;
    d.seq = dispatch_seq_++;
    d.lease = *lease;
    inflight_.push(d);
    if (members.size() > 1) ++batches_;
  }
}

double GemmService::execute(double start_vt, const NodeLease& lease,
                            const std::vector<std::uint64_t>& members) {
  const int track = lease.first_node;
  double t = start_vt;
  for (std::uint64_t id : members) {
    Entry& e = entry(id);
    e.rep.state = JobState::Running;
    e.rep.nodes = lease.nodes;
    e.rep.ranks = lease.nodes * machine_.ranks_per_node;
    e.rep.batch_size = static_cast<int>(members.size());
    e.rep.start_vt = t;
    bool ok = false;
    int attempts = 0;
    MultiplyResult r;
    while (attempts <= cfg_.retries) {
      double makespan = 0.0;
      try {
        r = attempt_job(machine_, lease, e.spec, cfg_, attempts, &makespan);
        ok = true;
      } catch (const std::exception&) {
        ok = false;
      }
      t += makespan;
      ++attempts;
      if (ok) break;
      if (attempts <= cfg_.retries) {
        ++retries_;
        tracer_.instant(track, trace::Phase::JobRetry, t, id);
      }
    }
    e.rep.attempts = attempts;
    e.rep.completion_vt = t;
    e.rep.state = ok ? JobState::Done : JobState::Failed;
    if (ok) e.rep.result = r;
    e.rep.deadline_met =
        e.spec.deadline_hint <= 0 || e.rep.latency() <= e.spec.deadline_hint;
    tracer_.span(track, trace::Phase::JobWait, e.rep.arrival_vt,
                 e.rep.start_vt, id);
    tracer_.span(track, trace::Phase::Job, e.rep.start_vt, e.rep.completion_vt,
                 id);
  }
  leased_node_seconds_ += static_cast<double>(lease.nodes) * (t - start_vt);
  return t;
}

GemmService::Entry& GemmService::entry(std::uint64_t id) {
  SRUMMA_REQUIRE(id >= 1 && id <= jobs_.size(), "unknown job id");
  return jobs_[id - 1];
}

const GemmService::Entry& GemmService::entry(std::uint64_t id) const {
  SRUMMA_REQUIRE(id >= 1 && id <= jobs_.size(), "unknown job id");
  return jobs_[id - 1];
}

const JobReport& GemmService::report(std::uint64_t id) const {
  return entry(id).rep;
}

std::vector<JobReport> GemmService::reports() const {
  std::vector<JobReport> out;
  out.reserve(jobs_.size());
  for (const Entry& e : jobs_) out.push_back(e.rep);
  return out;
}

ServiceMetrics GemmService::metrics() const {
  ServiceMetrics m;
  m.submitted = jobs_.size();
  m.batches = batches_;
  m.retries = retries_;
  double first_arrival = std::numeric_limits<double>::infinity();
  double last_completion = 0.0;
  std::vector<double> latencies;
  double wait_sum = 0.0;
  for (const Entry& e : jobs_) {
    if (e.rep.state == JobState::Rejected) {
      ++m.rejected;
      continue;
    }
    ++m.accepted;
    first_arrival = std::min(first_arrival, e.rep.arrival_vt);
    if (e.rep.state == JobState::Done) {
      ++m.completed;
      latencies.push_back(e.rep.latency());
      wait_sum += e.rep.wait();
    } else if (e.rep.state == JobState::Failed) {
      ++m.failed;
    }
    if (e.rep.state == JobState::Done || e.rep.state == JobState::Failed) {
      last_completion = std::max(last_completion, e.rep.completion_vt);
      if (!e.rep.deadline_met) ++m.deadline_misses;
    }
  }
  if (m.completed + m.failed == 0) return m;
  m.window = last_completion - first_arrival;
  if (m.window > 0) {
    m.jobs_per_s = static_cast<double>(m.completed) / m.window;
    m.utilization = leased_node_seconds_ /
                    (m.window * static_cast<double>(machine_.num_nodes));
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto nearest_rank = [&](double q) {
      const auto n = static_cast<double>(latencies.size());
      const auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
      return latencies[std::min(idx, latencies.size() - 1)];
    };
    m.p50_latency = nearest_rank(0.50);
    m.p99_latency = nearest_rank(0.99);
    m.mean_wait = wait_sum / static_cast<double>(m.completed);
  }
  return m;
}

bool GemmService::flush_trace() {
  if (cfg_.trace_path.empty()) return true;
  return trace::write_chrome_trace_file(cfg_.trace_path, tracer_);
}

MultiplyResult run_standalone(const MachineModel& machine, int nodes,
                              const JobSpec& spec, const ServiceConfig& cfg) {
  double makespan = 0.0;
  return attempt_job(machine, NodeLease{0, nodes}, spec, cfg, 0, &makespan);
}

}  // namespace srumma::service
