#pragma once
// Job vocabulary of the GEMM request plane (docs/SERVICE.md).
//
// A JobSpec is everything a client states about one multiply: the shape
// and transpose flavor, the scalars, a priority class, an optional soft
// deadline, and either phantom (model-only) or real operand views.  The
// service answers a submit with a typed SubmitResult — accepted with a job
// id, or shed with a RejectReason — and materializes one JobReport per
// submission (including rejected ones) recording the full lifecycle.

#include <cstdint>
#include <string>

#include "blas/gemm.hpp"
#include "trace/report.hpp"
#include "util/matrix.hpp"

namespace srumma::service {

/// Scheduling class.  Higher classes are dispatched first; waiting jobs
/// age upward (ServiceConfig::age_boost) so Low can never starve.
enum class JobPriority : std::uint8_t { Low = 0, Normal = 1, High = 2 };

[[nodiscard]] const char* priority_name(JobPriority p);

/// Why a submission was not admitted (docs/SERVICE.md §4).
enum class RejectReason : std::uint8_t {
  None,          ///< accepted
  QueueFull,     ///< waiting queue at ServiceConfig::queue_cap — shed
  ShuttingDown,  ///< submitted after close()
  BadShape,      ///< non-positive dimensions or mismatched operand views
};

[[nodiscard]] const char* reject_name(RejectReason r);

/// Job lifecycle states (docs/SERVICE.md §3).
enum class JobState : std::uint8_t {
  Queued,    ///< admitted, waiting for a sub-team
  Running,   ///< dispatched on a node lease
  Done,      ///< completed; result is final
  Failed,    ///< every attempt exhausted its retries
  Rejected,  ///< never admitted (see RejectReason)
};

[[nodiscard]] const char* state_name(JobState s);

/// One GEMM request: C := alpha * op(A) * op(B) + beta * C.
struct JobSpec {
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;
  blas::Trans ta = blas::Trans::No;
  blas::Trans tb = blas::Trans::No;
  double alpha = 1.0;
  double beta = 0.0;

  JobPriority priority = JobPriority::Normal;
  /// Soft latency target in virtual seconds from arrival; 0 = none.  Used
  /// only to break ties among equal-effective-priority jobs (earliest
  /// deadline first) and reported as met/missed — never a reject cause.
  double deadline_hint = 0.0;
  std::string label;

  /// Model-only job: no data allocated or moved, full cost accounting —
  /// the same phantom mode DistMatrix offers (the benches use this).
  bool phantom = true;
  /// Real-data jobs (phantom == false): global operand views.  a is
  /// op-less op(A)'s storage (k x m when ta == Trans::Yes, else m x k), b
  /// likewise for B; c is both the beta input and the m x n destination
  /// the serviced product is gathered back into.  The views must stay
  /// valid until the job's report is final (drain() or the submit that
  /// processes its completion).
  ConstMatrixView a{};
  ConstMatrixView b{};
  MatrixView c{};

  /// FLOP cost 2mnk — what the scheduler sizes sub-teams by.
  [[nodiscard]] double flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
  }
};

/// Typed answer to GemmService::submit.
struct SubmitResult {
  std::uint64_t id = 0;  ///< report handle (assigned to rejects too)
  bool accepted = false;
  RejectReason reject = RejectReason::None;
};

/// Full lifecycle record of one submission.
struct JobReport {
  std::uint64_t id = 0;
  std::string label;
  JobState state = JobState::Queued;
  JobPriority priority = JobPriority::Normal;
  RejectReason reject = RejectReason::None;

  double arrival_vt = 0.0;     ///< virtual time of submit
  double start_vt = 0.0;       ///< dispatch onto the sub-team
  double completion_vt = 0.0;  ///< result final (Done or Failed)

  [[nodiscard]] double wait() const { return start_vt - arrival_vt; }
  [[nodiscard]] double service() const { return completion_vt - start_vt; }
  [[nodiscard]] double latency() const { return completion_vt - arrival_vt; }

  int nodes = 0;        ///< lease width the job ran on
  int ranks = 0;        ///< sub-team size
  int attempts = 0;     ///< sub-team runs consumed (1 = no retry)
  int batch_size = 1;   ///< jobs sharing the lease (1 = dispatched alone)
  bool deadline_met = true;  ///< latency() <= deadline_hint (true when 0)

  /// The final attempt's multiply result (zeroed for Rejected/Failed).
  MultiplyResult result;
};

}  // namespace srumma::service
