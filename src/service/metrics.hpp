#pragma once
// Machine-readable request-plane metrics (docs/SERVICE.md §8).
//
// bench_service serializes one ServiceMetrics block per experiment arm to
// the stable "srumma-service-metrics/1" schema — the service-level
// counterpart of "srumma-bench-metrics/1" (trace/metrics_json.hpp):
//
//   {
//     "schema": "srumma-service-metrics/1",
//     "bench":  "<bench id, e.g. service>",
//     "arms": [
//       { "label":   "<experiment arm>",
//         "params":  { "<name>": <number>, ... },   // workload inputs
//         "metrics": { "jobs_per_s": ..., "latency_p50_s": ...,
//                      "latency_p99_s": ..., "utilization": ...,
//                      "wall_seconds": ...,
//                      "wall_per_virtual_second": ..., ... } },
//       ...
//     ]
//   }
//
// Fields are only ever added, never renamed, so BENCH_service.json files
// from different PRs stay comparable (the bench-metrics rule).

#include <string>
#include <vector>

#include "service/service.hpp"
#include "trace/metrics_json.hpp"

namespace srumma::service {

/// One experiment arm of a service bench.  `wall_seconds` is the real
/// time the arm took to simulate; the emitted wall_per_virtual_second
/// divides it by the arm's modeled window (the bench-metrics rule).
struct ServiceArm {
  std::string label;
  trace::NumberMap params;
  ServiceMetrics metrics;
  double wall_seconds = 0.0;
};

/// Every ServiceMetrics field as (key, value) pairs — the "metrics" block.
[[nodiscard]] trace::NumberMap metrics_map(const ServiceMetrics& m);

/// The whole document.
[[nodiscard]] std::string service_metrics_json(
    const std::string& bench, const std::vector<ServiceArm>& arms);

/// Write the document to SRUMMA_BENCH_JSON when set (no-op success when
/// unset — the MetricsLog::write_env contract).  False only on I/O error.
bool write_service_metrics_env(const std::string& bench,
                               const std::vector<ServiceArm>& arms);

}  // namespace srumma::service
