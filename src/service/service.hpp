#pragma once
// Multiply-as-a-service: a request plane serving concurrent GEMM job
// streams on one simulated machine (docs/SERVICE.md).
//
// Clients submit JobSpecs stamped with virtual arrival times (an open-loop
// arrival process: arrivals do not wait for completions).  The service is
// a discrete-event simulation over the same virtual-time substrate the
// rest of the repo runs on: it keeps a waiting queue under admission
// control, sizes a node lease for each job from its FLOP cost, carves a
// fresh SubTeam per dispatch (independent barriers/epochs/fault streams by
// construction — runtime/subteam.hpp), batches small multiplies onto one
// lease, and overlaps jobs in virtual time on disjoint leases.  Each
// dispatched multiply executes through the real srumma_multiply path, so
// a serviced job's C is bitwise identical to a standalone multiply of the
// same shape on a machine of the lease's size (run_standalone below is
// that reference, and tests/test_service.cpp holds the service to it).
//
// Scheduling policy (docs/SERVICE.md §5): effective priority = class +
// age/age_boost; the waiting queue is scanned in (effective priority desc,
// deadline asc, arrival asc) order and a job that does not fit the free
// nodes BLOCKS everything behind it — no backfill past a blocked job, so
// a small high-priority job can never starve behind a huge low-priority
// one, and a huge job can never be starved by a stream of small ones.

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "machine/machine.hpp"
#include "rma/rma.hpp"
#include "runtime/subteam.hpp"
#include "service/job.hpp"
#include "trace/tracer.hpp"

namespace srumma::service {

/// Request-plane knobs; every field has a SRUMMA_SERVICE_* environment
/// override (docs/SERVICE.md §6).
struct ServiceConfig {
  /// Admission control: maximum jobs *waiting* (running jobs excluded).
  /// A submit finding the queue full is shed with RejectReason::QueueFull.
  /// 0 = unbounded.  [SRUMMA_SERVICE_QUEUE_CAP]
  int queue_cap = 64;
  /// Maximum concurrently running dispatches; 0 = limited only by nodes.
  /// [SRUMMA_SERVICE_MAX_INFLIGHT]
  int max_inflight = 0;
  /// Sub-team sizing divisor: a job gets clamp(ceil(flops / flops_per_node),
  /// 1, num_nodes) nodes.  [SRUMMA_SERVICE_FLOPS_PER_NODE]
  double flops_per_node = 2e8;
  /// Jobs under this FLOP cost are batchable: a contiguous scan-order run
  /// of them (up to batch_max) shares one lease, executing back to back.
  /// 0 disables batching.  [SRUMMA_SERVICE_BATCH_FLOPS]
  double batch_flops = 0.0;
  /// Maximum jobs per batch.  [SRUMMA_SERVICE_BATCH_MAX]
  int batch_max = 4;
  /// Retries after a failed attempt (each on a fresh sub-team; a
  /// config-installed fault plane is reseeded per attempt so the retry
  /// does not deterministically replay the fault).  [SRUMMA_SERVICE_RETRIES]
  int retries = 1;
  /// Aging: +1 effective priority per this many virtual seconds waited;
  /// 0 disables aging.  [SRUMMA_SERVICE_AGE_BOOST]
  double age_boost = 0.0;
  /// Serial job-at-a-time baseline arm: every job gets the whole machine,
  /// one dispatch in flight, no batching — what the repo could do before
  /// the request plane existed.  bench_service measures the concurrent
  /// plane against this.  (No env knob: an arm selector, not a tunable.)
  bool serialize = false;
  /// Chrome-trace path for the service-level job spans (flush_trace()
  /// writes it; empty = record-only).  [SRUMMA_SERVICE_TRACE]
  std::string trace_path;

  /// Options forwarded to every srumma_multiply (ta/tb/alpha/beta are
  /// overridden per job from its spec).
  SrummaOptions multiply;
  /// RMA stack configuration for every sub-team (checker, cache, retry,
  /// fault plane).
  RmaConfig rma;

  /// Defaults + SRUMMA_SERVICE_* environment overrides.
  [[nodiscard]] static ServiceConfig from_env();
};

/// Aggregates over one service run (docs/SERVICE.md §8); serialized by
/// src/service/metrics.hpp as "srumma-service-metrics/1".
struct ServiceMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;  ///< state Done
  std::uint64_t failed = 0;     ///< state Failed
  double window = 0.0;       ///< last completion - first arrival (virtual s)
  double jobs_per_s = 0.0;   ///< completed / window
  double p50_latency = 0.0;  ///< median completed-job latency (virtual s)
  double p99_latency = 0.0;  ///< 99th-percentile (nearest-rank)
  double mean_wait = 0.0;    ///< mean queue wait of completed jobs
  double utilization = 0.0;  ///< leased node-seconds / (window * num_nodes)
  std::uint64_t deadline_misses = 0;
  std::uint64_t batches = 0;  ///< dispatches carrying more than one job
  std::uint64_t retries = 0;  ///< failed attempts that were re-dispatched
};

class GemmService {
 public:
  explicit GemmService(MachineModel machine, ServiceConfig cfg = {});

  /// Submit one job at virtual time `arrival_vt` (non-decreasing across
  /// calls).  Advances the event loop to the arrival, then admits or sheds.
  SubmitResult submit(const JobSpec& spec, double arrival_vt);

  /// Run the event loop until every admitted job is Done or Failed.
  void drain();

  /// Stop admitting: every later submit is shed with ShuttingDown.
  void close() noexcept { closed_ = true; }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] const MachineModel& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] TeamPartition& partition() noexcept { return partition_; }

  /// Lifecycle record of one submission (ids start at 1).
  [[nodiscard]] const JobReport& report(std::uint64_t id) const;
  /// All reports in submission order.
  [[nodiscard]] std::vector<JobReport> reports() const;

  /// Aggregates over everything submitted so far (call after drain()).
  [[nodiscard]] ServiceMetrics metrics() const;

  /// Service-level tracer: one track per parent node, Job/JobWait spans and
  /// JobArrive/JobReject/JobRetry instants.
  [[nodiscard]] trace::Tracer& tracer() noexcept { return tracer_; }
  /// Write the job-span Chrome trace to cfg.trace_path (no-op when empty).
  bool flush_trace();

 private:
  struct Entry {
    JobSpec spec;
    JobReport rep;
  };
  struct Dispatch {
    double end_vt = 0.0;
    std::uint64_t seq = 0;  ///< dispatch order, tie-break for equal ends
    NodeLease lease;
  };
  struct DispatchLater {
    bool operator()(const Dispatch& a, const Dispatch& b) const {
      return a.end_vt != b.end_vt ? a.end_vt > b.end_vt : a.seq > b.seq;
    }
  };

  /// Process completions up to `vt`, dispatching as leases free.
  void advance_to(double vt);
  /// Dispatch every waiting job that fits, in policy order, until one
  /// blocks.  Each dispatch executes synchronously (virtual-time DES: the
  /// makespan is known the moment the sub-team run returns).
  void try_dispatch();
  /// Lease width for one job (docs/SERVICE.md §5).
  [[nodiscard]] int nodes_for(const JobSpec& spec) const;
  /// Run one lease's batch; fills reports and returns the lease-end time.
  double execute(double start_vt, const NodeLease& lease,
                 const std::vector<std::uint64_t>& members);
  /// One attempt of one job on a fresh SubTeam; throws on failure.
  MultiplyResult run_attempt(const NodeLease& lease, const JobSpec& spec,
                             int attempt, double* makespan);
  [[nodiscard]] Entry& entry(std::uint64_t id);
  [[nodiscard]] const Entry& entry(std::uint64_t id) const;

  MachineModel machine_;
  ServiceConfig cfg_;
  TeamPartition partition_;
  trace::Tracer tracer_;

  std::vector<Entry> jobs_;
  std::vector<std::uint64_t> waiting_;  ///< admitted, not yet dispatched
  std::priority_queue<Dispatch, std::vector<Dispatch>, DispatchLater>
      inflight_;
  std::uint64_t dispatch_seq_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t retries_ = 0;
  double leased_node_seconds_ = 0.0;
  double now_ = 0.0;
  double last_arrival_ = 0.0;
  bool closed_ = false;
};

/// The bitwise-identity reference (docs/SERVICE.md §2): run `spec` alone
/// on a fresh `nodes`-node carve of `machine` with the same multiply/RMA
/// configuration the service would use.  The serviced job and this call
/// execute the identical code path on behaviorally identical machines, so
/// real-data results match bit for bit.
MultiplyResult run_standalone(const MachineModel& machine, int nodes,
                              const JobSpec& spec,
                              const ServiceConfig& cfg = {});

}  // namespace srumma::service
