#include "service/metrics.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace srumma::service {

namespace {

std::string num(double v) {
  std::ostringstream os;
  // 17 significant digits: doubles round-trip exactly (the bench-metrics
  // serializer rule; see trace/metrics_json.cpp).
  os.precision(17);
  os << v;
  return os.str();
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void emit_map(std::ostream& os, const trace::NumberMap& m) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    os << (first ? "" : ",") << "\"" << escape(k) << "\":" << num(v);
    first = false;
  }
  os << "}";
}

}  // namespace

trace::NumberMap metrics_map(const ServiceMetrics& m) {
  return {
      {"jobs_submitted", static_cast<double>(m.submitted)},
      {"jobs_accepted", static_cast<double>(m.accepted)},
      {"jobs_rejected", static_cast<double>(m.rejected)},
      {"jobs_completed", static_cast<double>(m.completed)},
      {"jobs_failed", static_cast<double>(m.failed)},
      {"window_s", m.window},
      {"jobs_per_s", m.jobs_per_s},
      {"latency_p50_s", m.p50_latency},
      {"latency_p99_s", m.p99_latency},
      {"mean_wait_s", m.mean_wait},
      {"utilization", m.utilization},
      {"deadline_misses", static_cast<double>(m.deadline_misses)},
      {"batches", static_cast<double>(m.batches)},
      {"retries", static_cast<double>(m.retries)},
  };
}

std::string service_metrics_json(const std::string& bench,
                                 const std::vector<ServiceArm>& arms) {
  std::ostringstream os;
  os << "{\"schema\":\"srumma-service-metrics/1\",\"bench\":\""
     << escape(bench) << "\",\"arms\":[";
  bool first = true;
  for (const ServiceArm& arm : arms) {
    os << (first ? "" : ",") << "\n  {\"label\":\"" << escape(arm.label)
       << "\",\"params\":";
    emit_map(os, arm.params);
    os << ",\"metrics\":";
    trace::NumberMap metrics = metrics_map(arm.metrics);
    metrics.emplace_back("wall_seconds", arm.wall_seconds);
    metrics.emplace_back("wall_per_virtual_second",
                         arm.metrics.window > 0.0
                             ? arm.wall_seconds / arm.metrics.window
                             : 0.0);
    emit_map(os, metrics);
    os << "}";
    first = false;
  }
  os << "\n]}\n";
  return os.str();
}

bool write_service_metrics_env(const std::string& bench,
                               const std::vector<ServiceArm>& arms) {
  const char* p = std::getenv("SRUMMA_BENCH_JSON");
  if (p == nullptr || *p == '\0') return true;
  std::ofstream f(p, std::ios::trunc);
  if (!f) return false;
  f << service_metrics_json(bench, arms);
  return static_cast<bool>(f);
}

}  // namespace srumma::service
