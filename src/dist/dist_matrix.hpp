#pragma once
// Distributed dense matrix over a process grid (the Global-Arrays-style
// substrate SRUMMA operates on).
//
// Each rank owns one contiguous block; storage comes from the RMA layer's
// collective symmetric allocation, so every rank knows every block's base
// pointer.  Access paths:
//
//   * local_view()      — my own block, direct;
//   * direct_view()     — a peer's block region by load/store, legal only
//                         within my shared-memory domain (the paper's
//                         "direct access" flavor on Altix / Cray X1);
//   * fetch_nb()/wait() — a *generalized get* of any global rectangle: one
//                         nonblocking RMA get per intersected owner block
//                         (how GA's NGA_Get works, and how SRUMMA fetches
//                         its A_ik / B_kj panels).
//
// A DistMatrix is a per-rank value object describing one global array;
// every rank constructs it collectively with identical metadata.
//
// Phantom mode allocates no data and moves no bytes but charges full
// communication costs — the model-only benches run N=16000-class problems
// through the identical code path this way.

#include <optional>
#include <vector>

#include "dist/grid.hpp"
#include "rma/rma.hpp"
#include "runtime/team.hpp"
#include "util/matrix.hpp"

namespace srumma {

/// Completion handle for a generalized (multi-owner) patch fetch.
struct PatchHandle {
  std::vector<RmaHandle> pieces;
  bool pending = false;

  /// Latest completion time across the pieces (0 when empty).
  [[nodiscard]] double completion() const {
    double c = 0.0;
    for (const auto& h : pieces) c = std::max(c, h.completion);
    return c;
  }
};

class DistMatrix {
 public:
  /// Collective constructor: every rank of the team must call with the same
  /// (m, n, grid, phantom); grid.size() must equal the team size.
  DistMatrix(RmaRuntime& rma, Rank& me, index_t m, index_t n, ProcGrid grid,
             bool phantom = false);

  /// Collective destruction of the backing storage.  Optional — storage is
  /// otherwise reclaimed when the RmaRuntime is destroyed.
  void destroy(Rank& me);

  [[nodiscard]] index_t rows() const noexcept { return m_; }
  [[nodiscard]] index_t cols() const noexcept { return n_; }
  [[nodiscard]] const ProcGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] const BlockDist1D& row_dist() const noexcept { return rows_; }
  [[nodiscard]] const BlockDist1D& col_dist() const noexcept { return cols_; }
  [[nodiscard]] bool phantom() const noexcept { return phantom_; }

  /// Owning rank of global element (i, j).
  [[nodiscard]] int owner(index_t i, index_t j) const {
    return grid_.rank_of(rows_.owner(i), cols_.owner(j));
  }

  /// Global row/column range owned by `rank`.
  [[nodiscard]] index_t block_row_start(int rank) const;
  [[nodiscard]] index_t block_rows(int rank) const;
  [[nodiscard]] index_t block_col_start(int rank) const;
  [[nodiscard]] index_t block_cols(int rank) const;

  /// Mutable view of the calling rank's local block (not phantom).
  [[nodiscard]] MatrixView local_view(Rank& me);

  /// Read-only load/store view of the sub-rectangle when it lies entirely
  /// within one owner block AND that owner shares my memory domain (and the
  /// matrix is not phantom).  Returns nullopt otherwise.
  [[nodiscard]] std::optional<ConstMatrixView> direct_view(Rank& me,
                                                           index_t i0,
                                                           index_t j0,
                                                           index_t mi,
                                                           index_t nj) const;

  /// Declare to the RMA checker (when enabled) that `me` reads the
  /// rectangle [i0, i0+mi) x [j0, j0+nj) directly by load/store from
  /// `owner`'s block.  direct_view() declares automatically; the phantom
  /// direct-access path (which models the loads without data) must call
  /// this explicitly.  No-op when checking is off.
  void declare_direct_read(
      Rank& me, int owner, index_t i0, index_t j0, index_t mi, index_t nj,
      std::source_location site = std::source_location::current()) const;

  /// True when every owner of the rectangle is in my shared-memory domain.
  [[nodiscard]] bool rect_in_domain(Rank& me, index_t i0, index_t j0,
                                    index_t mi, index_t nj) const;

  /// The backing SymmetricRegion's allocation seq: lockstep-identical
  /// across ranks and never reused, so it is a process-wide unique matrix
  /// identity — the block cache keys patches with it (docs/CACHE.md).
  [[nodiscard]] std::uint64_t region_seq() const noexcept {
    return region_.seq;
  }

  /// Modeled bytes of the rectangle owned OUTSIDE `me`'s shared-memory
  /// domain — the inter-node volume a generalized get of it would move
  /// (what a cooperative-cache share saves).
  [[nodiscard]] std::uint64_t remote_piece_bytes(Rank& me, index_t i0,
                                                 index_t j0, index_t mi,
                                                 index_t nj);

  /// Declare to the RMA checker (when enabled) that `me` consumed the
  /// rectangle through the block cache: a completed read is registered at
  /// the TRUE origin (each owner's segment), so get-vs-put conflicts are
  /// still detected even though this rank moved no bytes over the NIC.
  void declare_shared_read(
      Rank& me, index_t i0, index_t j0, index_t mi, index_t nj,
      std::source_location site = std::source_location::current());

  /// The owner rank when the rectangle lies in exactly one block whose
  /// owner shares my memory domain — i.e. direct load/store access is
  /// possible; nullopt otherwise.  Works for phantom matrices too (used to
  /// *model* direct access when no data exists).
  [[nodiscard]] std::optional<int> single_owner_in_domain(Rank& me, index_t i0,
                                                          index_t j0,
                                                          index_t mi,
                                                          index_t nj) const;

  /// Owner rank of the rectangle's upper-left element (used by the
  /// diagonal-shift ordering to classify a task's primary source).
  [[nodiscard]] int rect_primary_owner(index_t i0, index_t j0) const {
    return owner(i0, j0);
  }

  /// Nonblocking generalized get of [i0, i0+mi) x [j0, j0+nj) into dst.
  /// dst must be mi x nj (ignored for phantom matrices; pass an empty view).
  [[nodiscard]] PatchHandle fetch_nb(Rank& me, index_t i0, index_t j0,
                                     index_t mi, index_t nj, MatrixView dst);

  /// Nonblocking generalized put: write src into the global rectangle
  /// (one one-sided put per intersected owner block).
  [[nodiscard]] PatchHandle store_nb(Rank& me, index_t i0, index_t j0,
                                     index_t mi, index_t nj,
                                     ConstMatrixView src);

  /// Nonblocking generalized accumulate: global rect += alpha * src, with
  /// element-level atomicity against concurrent accumulates.
  [[nodiscard]] PatchHandle accumulate_nb(Rank& me, index_t i0, index_t j0,
                                          index_t mi, index_t nj, double alpha,
                                          ConstMatrixView src);

  /// Complete a generalized one-sided operation.
  void wait(Rank& me, PatchHandle& h);

  /// Like wait(), but reports per-piece retry exhaustion instead of
  /// throwing: returns true when every piece delivered (RmaStatus::Ok).
  /// All pieces are completed either way, so drain loops stay balanced.
  bool try_wait(Rank& me, PatchHandle& h);

  /// Verify a fetched patch bitwise against the owners' live segments (the
  /// checksum stand-in: in a real runtime this would compare transported
  /// checksums).  Returns false when the copy differs — e.g. an injected
  /// payload corruption — in which case the caller should refetch.  Charges
  /// a local memory scan of the patch; trivially true for phantom matrices.
  /// Only valid while the owners' data is quiescent (SRUMMA's A/B panels
  /// are read-only during the multiply).
  bool verify_fetched(Rank& me, index_t i0, index_t j0, index_t mi, index_t nj,
                      ConstMatrixView dst);

  /// Fill my local block with the deterministic coordinate function so that
  /// distributed and serial copies of the same logical matrix agree.
  void fill_coords_local(Rank& me);

  /// Set my local block from the corresponding region of a full matrix.
  void scatter_from(Rank& me, ConstMatrixView global);

  /// Collective: copy every local block into a caller-shared full matrix.
  /// All ranks must pass views of the same m x n storage.  When a domain
  /// has been declared dead, its blocks are contributed by their buddy
  /// holders from the replicas instead (the dead ranks' own segments are
  /// modeled as unreachable).
  void gather_to(Rank& me, MatrixView global);

  /// Collective buddy replication (docs/FAULTS.md §7): every rank mirrors
  /// the block of its protectee — the rank with the same domain-local index
  /// in the domain buddy_offset places "before" its own — into a replica
  /// segment, so the panels of a domain that later fail-stops remain
  /// fetchable.  Requires a fault plane with a kill configured (the buddy
  /// offset comes from it); called by srumma_multiply before kill hooks are
  /// armed, so a domain can never die before its panels are mirrored.
  /// Refreshes the replica contents on every call (C changes between
  /// multiplies); allocates the replica region on first use.  Acts as a
  /// barrier.
  void replicate(Rank& me);

  /// Split-phase replication, three sub-phases the caller sequences:
  /// replicate_alloc (collective, barriers — first use only), replicate_nb
  /// (issues the mirror get), replicate_finish (waits it).  Callers
  /// mirroring several matrices MUST alloc all of them before issuing any
  /// get: allocation is a collective with a barrier, and a nonblocking get
  /// crossing a barrier has undefined completion (the RMA checker flags
  /// it).  They then overlap the wires and pay ONE publication barrier
  /// after the last finish instead of one per matrix — the caller owns
  /// that barrier.  `mirror = false` skips the content get while still
  /// requiring the allocated segment (so post-death stores/gathers have
  /// somewhere to redirect) — srumma_multiply uses this for C when
  /// beta == 0: the post-beta snapshot is identically zero and recovery
  /// overwrites every element it reads back, so the bytes would be dead
  /// weight on the wire.
  void replicate_alloc(Rank& me);
  RmaHandle replicate_nb(Rank& me, bool mirror = true);
  void replicate_finish(Rank& me, RmaHandle& h);

  /// Whether replicate() has run (redirect to replicas is possible).
  [[nodiscard]] bool replicated() const noexcept { return replica_allocated_; }

  [[nodiscard]] RmaRuntime& rma() noexcept { return *rma_; }

 private:
  void check_rect(index_t i0, index_t j0, index_t mi, index_t nj) const;

  /// One owner-block intersection of a global rectangle.  When the true
  /// owner's domain has been declared dead (and the matrix is replicated),
  /// the piece is REDIRECTED: `owner`/`owner_ptr` point at the buddy
  /// holder's replica copy of the block — the single place every access
  /// path (fetch/store/accumulate/verify/cache/checker) inherits the
  /// failover from.
  struct Piece {
    int owner;            ///< rank holding this piece (buddy after redirect)
    index_t gi, gj;       ///< global upper-left of the piece
    index_t rows, cols;   ///< extent
    double* owner_ptr;    ///< address inside the holding block (null: phantom)
    index_t owner_ld;     ///< holding block leading dimension
    std::uint64_t seg_seq;  ///< segment identity (region_ or replica_)
    index_t seg_lo;         ///< element offset of the piece in that segment
  };
  template <typename Fn>
  void for_each_piece(index_t i0, index_t j0, index_t mi, index_t nj, Fn&& fn);

  /// Buddy mapping (docs/FAULTS.md §7): same domain-local index, domain
  /// shifted by the fault plane's buddy_offset.
  [[nodiscard]] int buddy_holder(int rank) const;   ///< who protects `rank`
  [[nodiscard]] int protectee_of(int rank) const;   ///< whom `rank` protects

  RmaRuntime* rma_ = nullptr;
  index_t m_ = 0;
  index_t n_ = 0;
  ProcGrid grid_;
  BlockDist1D rows_;
  BlockDist1D cols_;
  SymmetricRegion region_;
  SymmetricRegion replica_;  ///< buddy replica storage (empty until replicate)
  bool replica_allocated_ = false;
  bool phantom_ = false;
};

}  // namespace srumma
