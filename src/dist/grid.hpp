#pragma once
// Two-dimensional process grid and 1-D block distribution.
//
// Ranks are laid out column-major on the p x q grid (rank = pi + pj*p), so
// with ranks_per_node = p a grid column maps onto one SMP node — the
// configuration of the paper's Fig. 4 (node 1 holds P00, P10, P20, P30).
//
// The distribution is plain block (not block-cyclic): rank (pi, pj) owns
// one contiguous block of each matrix, which is what SRUMMA's "owner
// computes" task decomposition assumes.  Remainders are spread one extra
// row/column to the first parts, so any m, n, P combination is legal.

#include <utility>

#include "util/error.hpp"
#include "util/matrix.hpp"

namespace srumma {

/// p x q logical process grid with column-major rank numbering.
struct ProcGrid {
  int p = 1;  ///< grid rows
  int q = 1;  ///< grid cols

  [[nodiscard]] int size() const noexcept { return p * q; }
  [[nodiscard]] int rank_of(int pi, int pj) const {
    SRUMMA_REQUIRE(pi >= 0 && pi < p && pj >= 0 && pj < q,
                   "grid coords out of range");
    return pi + pj * p;
  }
  [[nodiscard]] std::pair<int, int> coords_of(int rank) const {
    SRUMMA_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
    return {rank % p, rank / p};
  }

  /// Most-square factorization p*q = nranks with p >= q.
  static ProcGrid near_square(int nranks);
};

/// Block distribution of n items over `parts` parts; the first n % parts
/// parts receive one extra item.
class BlockDist1D {
 public:
  BlockDist1D() = default;
  BlockDist1D(index_t n, int parts) : n_(n), parts_(parts) {
    SRUMMA_REQUIRE(n >= 0 && parts >= 1, "invalid block distribution");
  }

  [[nodiscard]] index_t total() const noexcept { return n_; }
  [[nodiscard]] int parts() const noexcept { return parts_; }

  [[nodiscard]] index_t start(int part) const {
    SRUMMA_REQUIRE(part >= 0 && part <= parts_, "part out of range");
    const index_t base = n_ / parts_;
    const index_t rem = n_ % parts_;
    return part * base + std::min<index_t>(part, rem);
  }
  [[nodiscard]] index_t count(int part) const {
    return start(part + 1) - start(part);
  }
  [[nodiscard]] int owner(index_t i) const {
    SRUMMA_REQUIRE(i >= 0 && i < n_, "index out of range");
    const index_t base = n_ / parts_;
    const index_t rem = n_ % parts_;
    const index_t split = rem * (base + 1);
    if (i < split) return static_cast<int>(i / (base + 1));
    return static_cast<int>(rem + (i - split) / base);
  }

 private:
  index_t n_ = 0;
  int parts_ = 1;
};

}  // namespace srumma
