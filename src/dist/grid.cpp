#include "dist/grid.hpp"

namespace srumma {

ProcGrid ProcGrid::near_square(int nranks) {
  SRUMMA_REQUIRE(nranks >= 1, "need at least one rank");
  int q = 1;
  for (int d = 1; d * d <= nranks; ++d) {
    if (nranks % d == 0) q = d;
  }
  return ProcGrid{nranks / q, q};
}

}  // namespace srumma
