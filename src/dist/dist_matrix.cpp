#include "dist/dist_matrix.hpp"

#include <algorithm>
#include <cstring>

#include "fault/fault_plane.hpp"
#include "util/rng.hpp"

namespace srumma {

DistMatrix::DistMatrix(RmaRuntime& rma, Rank& me, index_t m, index_t n,
                       ProcGrid grid, bool phantom)
    : rma_(&rma),
      m_(m),
      n_(n),
      grid_(grid),
      rows_(m, grid.p),
      cols_(n, grid.q),
      phantom_(phantom) {
  SRUMMA_REQUIRE(grid.size() == rma.team().size(),
                 "DistMatrix: grid size must equal team size");
  const auto [pi, pj] = grid_.coords_of(me.id());
  const std::size_t elems =
      phantom_ ? 0
               : static_cast<std::size_t>(rows_.count(pi)) *
                     static_cast<std::size_t>(cols_.count(pj));
  region_ = rma.malloc_symmetric(me, elems);
}

void DistMatrix::destroy(Rank& me) {
  rma_->free_symmetric(me, region_);
  region_ = SymmetricRegion{};
  if (replica_allocated_) {
    rma_->free_symmetric(me, replica_);
    replica_ = SymmetricRegion{};
    replica_allocated_ = false;
  }
}

int DistMatrix::buddy_holder(int rank) const {
  const MachineModel& mm = rma_->team().machine();
  fault::FaultPlane* fp = rma_->team().faults();
  const int ds = mm.domain_size();
  const int nd = mm.num_domains();
  const int off = fp != nullptr ? fp->buddy_offset() : 1;
  return ((rank / ds + off) % nd) * ds + rank % ds;
}

int DistMatrix::protectee_of(int rank) const {
  const MachineModel& mm = rma_->team().machine();
  fault::FaultPlane* fp = rma_->team().faults();
  const int ds = mm.domain_size();
  const int nd = mm.num_domains();
  const int off = fp != nullptr ? fp->buddy_offset() : 1;
  return ((rank / ds - off % nd + nd) % nd) * ds + rank % ds;
}

void DistMatrix::replicate(Rank& me) {
  replicate_alloc(me);
  RmaHandle h = replicate_nb(me);
  replicate_finish(me, h);
  // Publication barrier: nobody's kill hooks are armed until every replica
  // is in place.
  me.barrier();
}

void DistMatrix::replicate_alloc(Rank& me) {
  fault::FaultPlane* fp = rma_->team().faults();
  SRUMMA_REQUIRE(fp != nullptr && fp->kill_enabled(),
                 "replicate: buddy replication needs a fault plane with a "
                 "permanent kill configured");
  if (replica_allocated_) return;
  const int src = protectee_of(me.id());
  const std::size_t elems =
      phantom_ ? 0
               : static_cast<std::size_t>(block_rows(src)) *
                     static_cast<std::size_t>(block_cols(src));
  replica_ = rma_->malloc_symmetric(me, elems);  // collective (barrier)
  replica_allocated_ = true;
}

RmaHandle DistMatrix::replicate_nb(Rank& me, bool mirror) {
  SRUMMA_REQUIRE(replica_allocated_,
                 "replicate_nb: call replicate_alloc first — allocation is a "
                 "collective with a barrier, and a nonblocking get must not "
                 "cross it");
  const int src = protectee_of(me.id());
  const index_t rm = block_rows(src);
  const index_t rn = block_cols(src);
  // Mirror the protectee's whole block into my replica segment — one
  // inter-domain get per rank, fully accounted (this is the recovery
  // stack's up-front cost, visible in BENCH_chaos.json).
  if (mirror && rm > 0 && rn > 0) {
    const index_t ld = std::max<index_t>(rm, 1);
    return rma_->nbget2d(me, src, region_.base(src), ld, rm, rn,
                         replica_.base(me.id()), ld);
  }
  return {};
}

void DistMatrix::replicate_finish(Rank& me, RmaHandle& h) {
  if (h.pending) rma_->wait(me, h);
}

index_t DistMatrix::block_row_start(int rank) const {
  return rows_.start(grid_.coords_of(rank).first);
}
index_t DistMatrix::block_rows(int rank) const {
  return rows_.count(grid_.coords_of(rank).first);
}
index_t DistMatrix::block_col_start(int rank) const {
  return cols_.start(grid_.coords_of(rank).second);
}
index_t DistMatrix::block_cols(int rank) const {
  return cols_.count(grid_.coords_of(rank).second);
}

MatrixView DistMatrix::local_view(Rank& me) {
  SRUMMA_REQUIRE(!phantom_, "local_view: phantom matrix has no storage");
  const index_t lm = block_rows(me.id());
  const index_t ln = block_cols(me.id());
  return MatrixView(region_.base(me.id()), lm, ln, std::max<index_t>(lm, 1));
}

void DistMatrix::check_rect(index_t i0, index_t j0, index_t mi,
                            index_t nj) const {
  SRUMMA_REQUIRE(mi >= 0 && nj >= 0, "rectangle extent must be non-negative");
  SRUMMA_REQUIRE(i0 >= 0 && j0 >= 0 && i0 + mi <= m_ && j0 + nj <= n_,
                 "rectangle exceeds matrix bounds");
}

std::optional<int> DistMatrix::single_owner_in_domain(Rank& me, index_t i0,
                                                      index_t j0, index_t mi,
                                                      index_t nj) const {
  check_rect(i0, j0, mi, nj);
  if (mi == 0 || nj == 0) return std::nullopt;
  const int o = owner(i0, j0);
  if (owner(i0 + mi - 1, j0 + nj - 1) != o) return std::nullopt;
  if (!rma_->same_domain(me.id(), o)) return std::nullopt;
  return o;
}

std::optional<ConstMatrixView> DistMatrix::direct_view(Rank& me, index_t i0,
                                                       index_t j0, index_t mi,
                                                       index_t nj) const {
  check_rect(i0, j0, mi, nj);
  if (phantom_ || mi == 0 || nj == 0) return std::nullopt;
  const int o = owner(i0, j0);
  // Whole rectangle within one owner block?
  if (owner(i0 + mi - 1, j0 + nj - 1) != o) return std::nullopt;
  if (!rma_->same_domain(me.id(), o)) return std::nullopt;
  declare_direct_read(me, o, i0, j0, mi, nj);
  const auto [pi, pj] = grid_.coords_of(o);
  const index_t lm = rows_.count(pi);
  const index_t li = i0 - rows_.start(pi);
  const index_t lj = j0 - cols_.start(pj);
  const double* base = region_.base(o);
  return ConstMatrixView(base + li + lj * lm, mi, nj, lm);
}

void DistMatrix::declare_direct_read(Rank& me, int owner, index_t i0,
                                     index_t j0, index_t mi, index_t nj,
                                     std::source_location site) const {
  if (rma_->checker() == nullptr || mi <= 0 || nj <= 0) return;
  const auto [pi, pj] = grid_.coords_of(owner);
  const index_t lm = std::max<index_t>(rows_.count(pi), 1);
  const index_t li = i0 - rows_.start(pi);
  const index_t lj = j0 - cols_.start(pj);
  rma_->declare_direct_access(me, region_, owner, li + lj * lm, mi, nj, lm,
                              site);
}

std::uint64_t DistMatrix::remote_piece_bytes(Rank& me, index_t i0, index_t j0,
                                             index_t mi, index_t nj) {
  check_rect(i0, j0, mi, nj);
  if (mi == 0 || nj == 0) return 0;
  std::uint64_t bytes = 0;
  for_each_piece(i0, j0, mi, nj, [&](const Piece& p) {
    if (me.machine().same_domain(me.id(), p.owner)) return;
    bytes += static_cast<std::uint64_t>(p.rows) *
             static_cast<std::uint64_t>(p.cols) * sizeof(double);
  });
  return bytes;
}

void DistMatrix::declare_shared_read(Rank& me, index_t i0, index_t j0,
                                     index_t mi, index_t nj,
                                     std::source_location site) {
  check::RmaChecker* ck = rma_->checker();
  if (ck == nullptr || mi <= 0 || nj <= 0) return;
  for_each_piece(i0, j0, mi, nj, [&](const Piece& p) {
    // Register at the piece's actual segment (region_ or, after a
    // dead-domain redirect, the buddy's replica) so the checker tracks the
    // bytes a cache share really consumed.
    check::Footprint f;
    f.rows = static_cast<std::uint64_t>(p.rows) * sizeof(double);
    f.cols = static_cast<std::uint64_t>(p.cols);
    f.ld = static_cast<std::uint64_t>(p.owner_ld) * sizeof(double);
    f.lo = static_cast<std::uint64_t>(p.seg_lo) * sizeof(double);
    ck->on_shared_read(me.id(), p.owner, p.seg_seq, f, site);
  });
}

bool DistMatrix::rect_in_domain(Rank& me, index_t i0, index_t j0, index_t mi,
                                index_t nj) const {
  check_rect(i0, j0, mi, nj);
  if (mi == 0 || nj == 0) return true;
  const int pi_lo = rows_.owner(i0);
  const int pi_hi = rows_.owner(i0 + mi - 1);
  const int pj_lo = cols_.owner(j0);
  const int pj_hi = cols_.owner(j0 + nj - 1);
  for (int pi = pi_lo; pi <= pi_hi; ++pi)
    for (int pj = pj_lo; pj <= pj_hi; ++pj)
      if (!rma_->same_domain(me.id(), grid_.rank_of(pi, pj))) return false;
  return true;
}

template <typename Fn>
void DistMatrix::for_each_piece(index_t i0, index_t j0, index_t mi, index_t nj,
                                Fn&& fn) {
  fault::FaultPlane* fp = rma_->team().faults();
  const bool failover =
      replica_allocated_ && fp != nullptr && fp->any_domain_dead();
  const MachineModel& mm = rma_->team().machine();
  const int pi_lo = rows_.owner(i0);
  const int pi_hi = rows_.owner(i0 + mi - 1);
  const int pj_lo = cols_.owner(j0);
  const int pj_hi = cols_.owner(j0 + nj - 1);
  for (int pj = pj_lo; pj <= pj_hi; ++pj) {
    const index_t cs = cols_.start(pj);
    const index_t jlo = std::max(j0, cs);
    const index_t jhi = std::min(j0 + nj, cs + cols_.count(pj));
    for (int pi = pi_lo; pi <= pi_hi; ++pi) {
      const index_t rs = rows_.start(pi);
      const index_t ilo = std::max(i0, rs);
      const index_t ihi = std::min(i0 + mi, rs + rows_.count(pi));
      Piece p;
      const int true_owner = grid_.rank_of(pi, pj);
      p.owner = true_owner;
      p.gi = ilo;
      p.gj = jlo;
      p.rows = ihi - ilo;
      p.cols = jhi - jlo;
      p.owner_ld = std::max<index_t>(rows_.count(pi), 1);
      p.seg_lo = (ilo - rs) + (jlo - cs) * p.owner_ld;
      if (failover && fp->domain_dead(mm.domain_of(true_owner))) {
        // The owner's domain fail-stopped: serve the piece from the buddy
        // holder's replica copy.  The replica stores the protectee's whole
        // block with the same leading dimension, so the offsets carry over.
        p.owner = buddy_holder(true_owner);
        p.seg_seq = replica_.seq;
        double* base = replica_.base(p.owner);
        p.owner_ptr = base == nullptr ? nullptr : base + p.seg_lo;
      } else {
        p.seg_seq = region_.seq;
        double* base = region_.base(true_owner);
        p.owner_ptr = base == nullptr ? nullptr : base + p.seg_lo;
      }
      fn(p);
    }
  }
}

PatchHandle DistMatrix::fetch_nb(Rank& me, index_t i0, index_t j0, index_t mi,
                                 index_t nj, MatrixView dst) {
  check_rect(i0, j0, mi, nj);
  if (!phantom_) {
    SRUMMA_REQUIRE(dst.rows() == mi && dst.cols() == nj,
                   "fetch_nb: destination view must match patch extent");
  }
  PatchHandle ph;
  if (mi == 0 || nj == 0) return ph;
  ph.pending = true;
  for_each_piece(i0, j0, mi, nj, [&](const Piece& p) {
    double* d = phantom_ ? nullptr
                         : dst.data() + (p.gi - i0) + (p.gj - j0) * dst.ld();
    ph.pieces.push_back(rma_->nbget2d(
        me, p.owner, p.owner_ptr, p.owner_ld, p.rows, p.cols, d,
        phantom_ ? std::max<index_t>(p.rows, 1) : dst.ld()));
  });
  return ph;
}

PatchHandle DistMatrix::store_nb(Rank& me, index_t i0, index_t j0, index_t mi,
                                 index_t nj, ConstMatrixView src) {
  check_rect(i0, j0, mi, nj);
  if (!phantom_) {
    SRUMMA_REQUIRE(src.rows() == mi && src.cols() == nj,
                   "store_nb: source view must match patch extent");
  }
  PatchHandle ph;
  if (mi == 0 || nj == 0) return ph;
  ph.pending = true;
  for_each_piece(i0, j0, mi, nj, [&](const Piece& p) {
    const double* s =
        phantom_ ? nullptr
                 : src.data() + (p.gi - i0) + (p.gj - j0) * src.ld();
    ph.pieces.push_back(rma_->nbput2d(
        me, p.owner, s, phantom_ ? std::max<index_t>(p.rows, 1) : src.ld(),
        p.rows, p.cols, p.owner_ptr, p.owner_ld));
  });
  return ph;
}

PatchHandle DistMatrix::accumulate_nb(Rank& me, index_t i0, index_t j0,
                                      index_t mi, index_t nj, double alpha,
                                      ConstMatrixView src) {
  check_rect(i0, j0, mi, nj);
  if (!phantom_) {
    SRUMMA_REQUIRE(src.rows() == mi && src.cols() == nj,
                   "accumulate_nb: source view must match patch extent");
  }
  PatchHandle ph;
  if (mi == 0 || nj == 0) return ph;
  ph.pending = true;
  for_each_piece(i0, j0, mi, nj, [&](const Piece& p) {
    const double* s =
        phantom_ ? nullptr
                 : src.data() + (p.gi - i0) + (p.gj - j0) * src.ld();
    ph.pieces.push_back(rma_->nbacc2d(
        me, p.owner, alpha, s,
        phantom_ ? std::max<index_t>(p.rows, 1) : src.ld(), p.rows, p.cols,
        p.owner_ptr, p.owner_ld));
  });
  return ph;
}

void DistMatrix::wait(Rank& me, PatchHandle& h) {
  if (!h.pending) return;
  for (auto& piece : h.pieces) {
    if (piece.pending) rma_->wait(me, piece);
  }
  h.pending = false;
}

bool DistMatrix::try_wait(Rank& me, PatchHandle& h) {
  if (!h.pending) return true;
  bool ok = true;
  for (auto& piece : h.pieces) {
    if (piece.pending && rma_->try_wait(me, piece) != RmaStatus::Ok)
      ok = false;
  }
  h.pending = false;
  return ok;
}

bool DistMatrix::verify_fetched(Rank& me, index_t i0, index_t j0, index_t mi,
                                index_t nj, ConstMatrixView dst) {
  check_rect(i0, j0, mi, nj);
  if (phantom_ || mi == 0 || nj == 0) return true;
  SRUMMA_REQUIRE(dst.rows() == mi && dst.cols() == nj,
                 "verify_fetched: view must match patch extent");
  bool ok = true;
  for_each_piece(i0, j0, mi, nj, [&](const Piece& p) {
    if (p.owner_ptr == nullptr || !ok) return;
    const double* d = dst.data() + (p.gi - i0) + (p.gj - j0) * dst.ld();
    for (index_t c = 0; c < p.cols && ok; ++c) {
      if (std::memcmp(d + c * dst.ld(), p.owner_ptr + c * p.owner_ld,
                      static_cast<std::size_t>(p.rows) * sizeof(double)) != 0)
        ok = false;
    }
  });
  // The verification pass itself: one local memory scan over the patch.
  const double bytes = static_cast<double>(mi) * static_cast<double>(nj) *
                       sizeof(double);
  me.charge_seconds(bytes / me.machine().host_copy_bw);
  return ok;
}

void DistMatrix::fill_coords_local(Rank& me) {
  SRUMMA_REQUIRE(!phantom_, "fill: phantom matrix has no storage");
  fill_coords(local_view(me), block_row_start(me.id()),
              block_col_start(me.id()));
}

void DistMatrix::scatter_from(Rank& me, ConstMatrixView global) {
  SRUMMA_REQUIRE(!phantom_, "scatter: phantom matrix has no storage");
  SRUMMA_REQUIRE(global.rows() == m_ && global.cols() == n_,
                 "scatter: global view dimension mismatch");
  MatrixView mine = local_view(me);
  copy(global.block(block_row_start(me.id()), block_col_start(me.id()),
                    mine.rows(), mine.cols()),
       mine);
}

void DistMatrix::gather_to(Rank& me, MatrixView global) {
  SRUMMA_REQUIRE(!phantom_, "gather: phantom matrix has no storage");
  SRUMMA_REQUIRE(global.rows() == m_ && global.cols() == n_,
                 "gather: global view dimension mismatch");
  me.barrier();
  fault::FaultPlane* fp = rma_->team().faults();
  const bool my_domain_dead = fp != nullptr && fp->domain_dead(me.domain());
  if (!my_domain_dead) {
    MatrixView mine = local_view(me);
    copy(mine, global.block(block_row_start(me.id()), block_col_start(me.id()),
                            mine.rows(), mine.cols()));
  }
  if (fp != nullptr && replica_allocated_ && !my_domain_dead) {
    // A dead domain's segments are modeled unreachable: its buddy holders
    // contribute the replica copies of its blocks instead.
    const int prot = protectee_of(me.id());
    if (fp->domain_dead(me.machine().domain_of(prot))) {
      const index_t rm = block_rows(prot);
      const index_t rn = block_cols(prot);
      if (rm > 0 && rn > 0) {
        ConstMatrixView rep(replica_.base(me.id()), rm, rn,
                            std::max<index_t>(rm, 1));
        copy(rep, global.block(block_row_start(prot), block_col_start(prot),
                               rm, rn));
      }
    }
  }
  me.barrier();
}

}  // namespace srumma
