#include "cyclic/cyclic_matrix.hpp"

#include <algorithm>

namespace srumma {

CyclicMatrix::CyclicMatrix(RmaRuntime& rma, Rank& me, index_t m, index_t n,
                           index_t mb, index_t nb, ProcGrid grid, bool phantom)
    : rma_(&rma),
      rows_(m, mb, grid.p),
      cols_(n, nb, grid.q),
      grid_(grid),
      phantom_(phantom) {
  SRUMMA_REQUIRE(grid.size() == rma.team().size(),
                 "CyclicMatrix: grid size must equal team size");
  const auto [pi, pj] = grid_.coords_of(me.id());
  const std::size_t elems =
      phantom_ ? 0
               : static_cast<std::size_t>(rows_.local_count(pi)) *
                     static_cast<std::size_t>(cols_.local_count(pj));
  region_ = rma.malloc_symmetric(me, elems);
}

void CyclicMatrix::destroy(Rank& me) {
  rma_->free_symmetric(me, region_);
  region_ = SymmetricRegion{};
}

MatrixView CyclicMatrix::local_view(Rank& me) {
  SRUMMA_REQUIRE(!phantom_, "local_view: phantom matrix has no storage");
  const index_t lm = local_rows(me.id());
  const index_t ln = local_cols(me.id());
  return MatrixView(region_.base(me.id()), lm, ln, std::max<index_t>(lm, 1));
}

CyclicMatrix::GlobalRef CyclicMatrix::locate(index_t i, index_t j) const {
  GlobalRef ref;
  ref.owner = owner(i, j);
  ref.li = rows_.to_local(i);
  ref.lj = cols_.to_local(j);
  return ref;
}

void CyclicMatrix::scatter_from(Rank& me, ConstMatrixView global) {
  SRUMMA_REQUIRE(!phantom_, "scatter: phantom matrix has no storage");
  SRUMMA_REQUIRE(global.rows() == rows() && global.cols() == cols(),
                 "scatter: global view dimension mismatch");
  const auto [pi, pj] = grid_.coords_of(me.id());
  MatrixView mine = local_view(me);
  for (index_t lj = 0; lj < mine.cols(); ++lj) {
    const index_t gj = cols_.to_global(pj, lj);
    for (index_t li = 0; li < mine.rows(); ++li) {
      mine(li, lj) = global(rows_.to_global(pi, li), gj);
    }
  }
  me.barrier();
}

void CyclicMatrix::gather_to(Rank& me, MatrixView global) {
  SRUMMA_REQUIRE(!phantom_, "gather: phantom matrix has no storage");
  SRUMMA_REQUIRE(global.rows() == rows() && global.cols() == cols(),
                 "gather: global view dimension mismatch");
  me.barrier();
  const auto [pi, pj] = grid_.coords_of(me.id());
  MatrixView mine = local_view(me);
  for (index_t lj = 0; lj < mine.cols(); ++lj) {
    const index_t gj = cols_.to_global(pj, lj);
    for (index_t li = 0; li < mine.rows(); ++li) {
      global(rows_.to_global(pi, li), gj) = mine(li, lj);
    }
  }
  me.barrier();
}

std::vector<RmaHandle> CyclicMatrix::fetch_nb(Rank& me, index_t i0, index_t j0,
                                              index_t mi, index_t nj,
                                              MatrixView dst) {
  SRUMMA_REQUIRE(mi >= 0 && nj >= 0 && i0 >= 0 && j0 >= 0 &&
                     i0 + mi <= rows() && j0 + nj <= cols(),
                 "fetch_nb: rectangle out of range");
  if (!phantom_) {
    SRUMMA_REQUIRE(dst.rows() == mi && dst.cols() == nj,
                   "fetch_nb: destination must match rectangle");
  }
  std::vector<RmaHandle> handles;
  // One get per intersected (row-block, col-block) tile.
  for (index_t j = j0; j < j0 + nj;) {
    const index_t jrun = std::min(cols_.run_length(j), j0 + nj - j);
    for (index_t i = i0; i < i0 + mi;) {
      const index_t irun = std::min(rows_.run_length(i), i0 + mi - i);
      const GlobalRef ref = locate(i, j);
      const index_t lm =
          std::max<index_t>(local_rows(ref.owner), 1);
      const double* base = region_.base(ref.owner);
      const double* src =
          base == nullptr ? nullptr : base + ref.li + ref.lj * lm;
      double* d = phantom_ ? nullptr
                           : dst.data() + (i - i0) + (j - j0) * dst.ld();
      handles.push_back(rma_->nbget2d(
          me, ref.owner, src, lm, irun, jrun, d,
          phantom_ ? std::max<index_t>(irun, 1) : dst.ld()));
      i += irun;
    }
    j += jrun;
  }
  return handles;
}

void CyclicMatrix::wait(Rank& me, std::vector<RmaHandle>& handles) {
  for (auto& h : handles) {
    if (h.pending) rma_->wait(me, h);
  }
}

}  // namespace srumma
