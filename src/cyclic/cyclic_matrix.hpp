#pragma once
// 2-D block-cyclic distributed matrix (the ScaLAPACK data layout), backed
// by the same one-sided symmetric heap as DistMatrix.
//
// Each rank stores its local_rows x local_cols elements packed column-major
// — exactly ScaLAPACK's local array convention — so the cyclic pdgemm's
// local products write straight into the local array.  A generalized
// one-sided fetch is provided for verification (a global rectangle decays
// into one get per intersected (row-block, column-block) tile, which is
// O((m/mb) * (n/nb)) pieces — fine for tests, and an honest reflection of
// why one-sided algorithms prefer plain block layouts).

#include "cyclic/cyclic_dist.hpp"
#include "dist/grid.hpp"
#include "rma/rma.hpp"
#include "runtime/team.hpp"

namespace srumma {

// Reuse DistMatrix's multi-piece completion record.
struct PatchHandle;

class CyclicMatrix {
 public:
  /// Collective: every rank of the team calls with identical arguments.
  /// mb/nb are the row/column blocking factors (ScaLAPACK MB/NB).
  CyclicMatrix(RmaRuntime& rma, Rank& me, index_t m, index_t n, index_t mb,
               index_t nb, ProcGrid grid, bool phantom = false);

  void destroy(Rank& me);

  [[nodiscard]] index_t rows() const noexcept { return rows_.total(); }
  [[nodiscard]] index_t cols() const noexcept { return cols_.total(); }
  [[nodiscard]] const CyclicDist1D& row_dist() const noexcept { return rows_; }
  [[nodiscard]] const CyclicDist1D& col_dist() const noexcept { return cols_; }
  [[nodiscard]] const ProcGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] bool phantom() const noexcept { return phantom_; }

  [[nodiscard]] int owner(index_t i, index_t j) const {
    return grid_.rank_of(rows_.owner(i), cols_.owner(j));
  }
  [[nodiscard]] index_t local_rows(int rank) const {
    return rows_.local_count(grid_.coords_of(rank).first);
  }
  [[nodiscard]] index_t local_cols(int rank) const {
    return cols_.local_count(grid_.coords_of(rank).second);
  }

  /// My packed local array (ScaLAPACK's sub(A)).
  [[nodiscard]] MatrixView local_view(Rank& me);

  /// Map a global element to (owner rank, local row, local col).
  struct GlobalRef {
    int owner;
    index_t li, lj;
  };
  [[nodiscard]] GlobalRef locate(index_t i, index_t j) const;

  /// Set my local elements from a full matrix / copy them back (tests).
  void scatter_from(Rank& me, ConstMatrixView global);
  void gather_to(Rank& me, MatrixView global);

  /// Nonblocking generalized one-sided get of a global rectangle.
  [[nodiscard]] std::vector<RmaHandle> fetch_nb(Rank& me, index_t i0,
                                                index_t j0, index_t mi,
                                                index_t nj, MatrixView dst);
  void wait(Rank& me, std::vector<RmaHandle>& handles);

  [[nodiscard]] RmaRuntime& rma() noexcept { return *rma_; }

 private:
  RmaRuntime* rma_ = nullptr;
  CyclicDist1D rows_;
  CyclicDist1D cols_;
  ProcGrid grid_;
  SymmetricRegion region_;
  bool phantom_ = false;
};

}  // namespace srumma
