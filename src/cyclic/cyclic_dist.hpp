#pragma once
// 1-D block-cyclic distribution (the ScaLAPACK layout).
//
// Element i belongs to part (i / nb) mod parts; a part's local storage
// concatenates its blocks in global order.  This is the distribution the
// real pdgemm operates on — the plain block distribution used by SRUMMA is
// the special case nb = ceil(n/parts).  Formulas follow ScaLAPACK's
// numroc/indxg2l/indxl2g with zero source offset.

#include "util/error.hpp"
#include "util/matrix.hpp"

namespace srumma {

class CyclicDist1D {
 public:
  CyclicDist1D() = default;
  CyclicDist1D(index_t n, index_t nb, int parts)
      : n_(n), nb_(nb), parts_(parts) {
    SRUMMA_REQUIRE(n >= 0 && nb >= 1 && parts >= 1,
                   "cyclic distribution: need n >= 0, nb >= 1, parts >= 1");
  }

  [[nodiscard]] index_t total() const noexcept { return n_; }
  [[nodiscard]] index_t block() const noexcept { return nb_; }
  [[nodiscard]] int parts() const noexcept { return parts_; }

  /// Owning part of global index i (indxg2p).
  [[nodiscard]] int owner(index_t i) const {
    SRUMMA_REQUIRE(i >= 0 && i < n_, "cyclic owner: index out of range");
    return static_cast<int>((i / nb_) % parts_);
  }

  /// Number of elements stored by `part` (numroc).
  [[nodiscard]] index_t local_count(int part) const {
    SRUMMA_REQUIRE(part >= 0 && part < parts_, "cyclic count: bad part");
    const index_t nblocks = n_ / nb_;        // complete blocks
    const index_t rem = n_ % nb_;            // trailing partial block
    index_t count = (nblocks / parts_) * nb_;
    const index_t leftover = nblocks % parts_;
    if (part < static_cast<int>(leftover)) {
      count += nb_;
    } else if (part == static_cast<int>(leftover)) {
      count += rem;
    }
    return count;
  }

  /// Local index of global i within its owner (indxg2l).
  [[nodiscard]] index_t to_local(index_t i) const {
    SRUMMA_REQUIRE(i >= 0 && i < n_, "cyclic to_local: index out of range");
    return (i / (nb_ * parts_)) * nb_ + i % nb_;
  }

  /// Global index of local l on `part` (indxl2g).
  [[nodiscard]] index_t to_global(int part, index_t l) const {
    SRUMMA_REQUIRE(part >= 0 && part < parts_, "cyclic to_global: bad part");
    SRUMMA_REQUIRE(l >= 0 && l < local_count(part),
                   "cyclic to_global: local index out of range");
    return (l / nb_) * (nb_ * parts_) + static_cast<index_t>(part) * nb_ +
           l % nb_;
  }

  /// Length of the contiguous run of elements starting at global i that
  /// stay within one block (and hence one owner): min(nb - i%nb, n - i).
  [[nodiscard]] index_t run_length(index_t i) const {
    SRUMMA_REQUIRE(i >= 0 && i < n_, "cyclic run_length: index out of range");
    return std::min(nb_ - i % nb_, n_ - i);
  }

 private:
  index_t n_ = 0;
  index_t nb_ = 1;
  int parts_ = 1;
};

}  // namespace srumma
