#pragma once
// SUMMA over the block-cyclic layout — faithful to PBLAS pdgemm's actual
// data distribution (the plain-block pdgemm model in src/baselines is the
// equal-blocks special case).
//
// For K panel t (one column block of A / row block of B, width kb):
//   * grid column (t mod q) owns the A panel; each root (i, t mod q) packs
//     its local-rows x kb piece and broadcasts it along grid row i;
//   * grid row (t mod p) owns the B panel; each root (t mod p, j) packs its
//     kb x local-cols piece and broadcasts it down grid column j;
//   * every rank accumulates C_local += A_piece * B_piece — with the
//     cyclic layout the local product *is* the local part of the global
//     product, no index translation needed.

#include "cyclic/cyclic_matrix.hpp"
#include "msg/comm.hpp"
#include "trace/report.hpp"

namespace srumma {

struct PdgemmCyclicOptions {
  double alpha = 1.0;
  double beta = 0.0;
};

/// SPMD collective: C := alpha*A*B + beta*C over block-cyclic matrices.
/// Blocking factors must conform: A is (m x k, mb x kb), B is (k x n,
/// kb x nb), C is (m x n, mb x nb), all on one grid.
MultiplyResult pdgemm_cyclic(Rank& me, Comm& comm, CyclicMatrix& a,
                             CyclicMatrix& b, CyclicMatrix& c,
                             const PdgemmCyclicOptions& opt = {});

}  // namespace srumma
