#include "cyclic/pdgemm_cyclic.hpp"

#include <algorithm>

#include "blas/gemm.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace srumma {

MultiplyResult pdgemm_cyclic(Rank& me, Comm& comm, CyclicMatrix& a,
                             CyclicMatrix& b, CyclicMatrix& c,
                             const PdgemmCyclicOptions& opt) {
  Team& team = me.team();
  const ProcGrid grid = c.grid();
  SRUMMA_REQUIRE(a.grid().p == grid.p && a.grid().q == grid.q &&
                     b.grid().p == grid.p && b.grid().q == grid.q,
                 "pdgemm_cyclic: matrices must share one grid");
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = a.cols();
  SRUMMA_REQUIRE(a.rows() == m && b.rows() == k && b.cols() == n,
                 "pdgemm_cyclic: dimensions do not conform");
  const index_t kb = a.col_dist().block();
  SRUMMA_REQUIRE(b.row_dist().block() == kb,
                 "pdgemm_cyclic: A's KB must equal B's MB");
  SRUMMA_REQUIRE(a.row_dist().block() == c.row_dist().block() &&
                     b.col_dist().block() == c.col_dist().block(),
                 "pdgemm_cyclic: row/col blocking of C must match A/B");
  SRUMMA_REQUIRE(a.phantom() == c.phantom() && b.phantom() == c.phantom(),
                 "pdgemm_cyclic: phantom flags must agree");
  const bool phantom = c.phantom();
  const MachineModel& mm = team.machine();

  const auto [pi, pj] = grid.coords_of(me.id());
  std::vector<int> row_group;
  for (int j = 0; j < grid.q; ++j) row_group.push_back(grid.rank_of(pi, j));
  std::vector<int> col_group;
  for (int i = 0; i < grid.p; ++i) col_group.push_back(grid.rank_of(i, pj));

  const index_t lrows = c.local_rows(me.id());
  const index_t lcols = c.local_cols(me.id());

  me.barrier();
  const double start_vt = me.clock().now();
  const TraceCounters my_start = me.trace();

  if (!phantom && opt.beta != 1.0) {
    MatrixView mine = c.local_view(me);
    if (opt.beta == 0.0) {
      mine.fill(0.0);
    } else {
      for (index_t j = 0; j < lcols; ++j)
        for (index_t i = 0; i < lrows; ++i) mine(i, j) *= opt.beta;
    }
  }

  Matrix a_panel;
  Matrix b_panel;
  if (!phantom) {
    a_panel = Matrix(std::max<index_t>(lrows, 1), kb);
    b_panel = Matrix(kb, std::max<index_t>(lcols, 1));
  }
  me.trace().buffer_bytes_peak = std::max(
      me.trace().buffer_bytes_peak,
      static_cast<std::uint64_t>((lrows + lcols) * kb) * sizeof(double));

  const index_t n_panels = (k + kb - 1) / kb;
  for (index_t t = 0; t < n_panels; ++t) {
    const index_t k0 = t * kb;
    const index_t kw = std::min(kb, k - k0);

    // A panel: owned by grid column (t mod q).
    const int pc = static_cast<int>(t % grid.q);
    const int a_root = grid.rank_of(pi, pc);
    MatrixView a_packed =
        phantom ? MatrixView{}
                : MatrixView(a_panel.data(), lrows, kw,
                             std::max<index_t>(lrows, 1));
    if (me.id() == a_root) {
      if (!phantom && lrows > 0) {
        const index_t lj0 = a.col_dist().to_local(k0);
        copy(ConstMatrixView(a.local_view(me).block(0, lj0, lrows, kw)),
             a_packed);
      }
      me.charge_seconds(static_cast<double>(lrows * kw) * sizeof(double) /
                        mm.shm_bw);
    }
    comm.bcast(me, row_group, a_root, phantom ? nullptr : a_panel.data(),
               static_cast<std::size_t>(lrows * kw));

    // B panel: owned by grid row (t mod p).
    const int pr = static_cast<int>(t % grid.p);
    const int b_root = grid.rank_of(pr, pj);
    MatrixView b_packed =
        phantom ? MatrixView{}
                : MatrixView(b_panel.data(), kw, lcols,
                             std::max<index_t>(kw, 1));
    if (me.id() == b_root) {
      if (!phantom && lcols > 0) {
        const index_t li0 = b.row_dist().to_local(k0);
        copy(ConstMatrixView(b.local_view(me).block(li0, 0, kw, lcols)),
             b_packed);
      }
      me.charge_seconds(static_cast<double>(kw * lcols) * sizeof(double) /
                        mm.shm_bw);
    }
    comm.bcast(me, col_group, b_root, phantom ? nullptr : b_panel.data(),
               static_cast<std::size_t>(kw * lcols));

    if (!phantom && lrows > 0 && lcols > 0) {
      MatrixView mine = c.local_view(me);
      blas::gemm(blas::Trans::No, blas::Trans::No, lrows, lcols, kw,
                 opt.alpha, a_packed.data(), a_packed.ld(), b_packed.data(),
                 b_packed.ld(), 1.0, mine.data(), mine.ld());
    }
    me.charge_gemm(lrows, lcols, kw);
  }

  return collect_result(me, start_vt, my_start,
                        gemm_flops(static_cast<double>(m),
                                   static_cast<double>(n),
                                   static_cast<double>(k)));
}

}  // namespace srumma
