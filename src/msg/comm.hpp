#pragma once
// Two-sided message passing (the MPI stand-in used by the baselines).
//
// ScaLAPACK pdgemm, SUMMA and Cannon's algorithm are message-passing codes;
// to compare them against SRUMMA on the same simulated machine this layer
// reproduces the MPI behaviours the paper's Section 4.1 measures:
//
//   * eager protocol for messages <= eager_threshold (16 KB, as in the
//     paper): the payload is buffered and the sender returns immediately,
//     paying a copy on each side — nonblocking sends of eager messages
//     overlap fully;
//   * rendezvous protocol above the threshold: sender and receiver must
//     handshake before the payload moves, and — matching the paper's
//     observation that MPI makes no progress outside library calls — a
//     nonblocking rendezvous send/recv only progresses at wait(), which is
//     exactly the overlap cliff of Fig. 7;
//   * "half round-trip" timing semantics for blocking send/recv pairs.
//
// Matching is strict (source, tag) FIFO; wildcards are deliberately not
// provided.  Negative tags are reserved for the built-in collectives.
//
// As everywhere in the library, a nullptr payload runs the op in phantom
// mode: full cost accounting, no data movement.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "runtime/team.hpp"
#include "util/matrix.hpp"

namespace srumma {

struct MsgConfig {
  /// Override the machine's eager->rendezvous switch point (bytes).
  std::optional<double> eager_threshold;
};

class Comm;

/// Completion handle for isend.  Eager sends complete at issue; rendezvous
/// sends are *deferred*: nothing moves until wait() (no async progress).
struct SendHandle {
  bool pending = false;
  // deferred rendezvous parameters
  bool deferred = false;
  int dst = -1;
  int tag = 0;
  const double* buf = nullptr;
  std::size_t elems = 0;
};

/// Completion handle for irecv.
struct RecvHandle {
  bool pending = false;
  bool done = false;          // matched & scheduled already
  double completion = 0.0;    // valid when done
  std::shared_ptr<void> slot; // keeps the posted-recv record alive
};

class Comm {
 public:
  /// Construct ONE Comm per team, outside the SPMD body, and share it
  /// across ranks — the mailboxes are the shared channel.  A Comm
  /// constructed inside Team::run is private to its rank and any receive
  /// on it deadlocks.
  explicit Comm(Team& team, MsgConfig cfg = {});
  ~Comm();
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] Team& team() noexcept { return team_; }
  [[nodiscard]] double eager_threshold() const noexcept { return eager_threshold_; }

  // -- point to point -------------------------------------------------------
  void send(Rank& me, int dst, int tag, const double* buf, std::size_t elems);
  void recv(Rank& me, int src, int tag, double* buf, std::size_t elems);
  SendHandle isend(Rank& me, int dst, int tag, const double* buf,
                   std::size_t elems);
  RecvHandle irecv(Rank& me, int src, int tag, double* buf, std::size_t elems);
  void wait(Rank& me, SendHandle& h);
  void wait(Rank& me, RecvHandle& h);

  /// Simultaneous exchange (deadlock-free): posts the receive, sends, then
  /// completes the receive.  Used by the shift steps of Cannon's algorithm.
  void sendrecv(Rank& me, int dst, int stag, const double* sbuf,
                std::size_t selems, int src, int rtag, double* rbuf,
                std::size_t relems);

  // -- collectives over explicit rank groups --------------------------------
  /// Binomial-tree broadcast; `root` is a rank id and must be in `group`.
  /// Every rank in `group` must call with identical arguments (except buf).
  void bcast(Rank& me, const std::vector<int>& group, int root, double* buf,
             std::size_t elems);
  /// Element-wise sum reduction to `root`.
  void reduce_sum(Rank& me, const std::vector<int>& group, int root,
                  double* buf, std::size_t elems);
  /// Max-allreduce (reduce to group[0], then broadcast).
  void allreduce_max(Rank& me, const std::vector<int>& group, double* buf,
                     std::size_t elems);
  /// Tree barrier with message-passing costs.
  void barrier(Rank& me, const std::vector<int>& group);

 private:
  struct PostedRecv {
    int src = -1;
    int tag = 0;
    double* buf = nullptr;
    std::size_t elems = 0;
    double posted_vt = 0.0;
    bool done = false;
    double completion = 0.0;
  };

  struct RvState {
    bool done = false;
    double completion = 0.0;
  };

  struct UnexpectedMsg {
    int src = -1;
    int tag = 0;
    std::size_t elems = 0;
    bool eager = true;
    // eager: buffered payload (empty for phantom sends)
    std::vector<double> data;
    double arrival_vt = 0.0;
    // rendezvous RTS: where the payload still lives + how to signal the sender
    const double* src_buf = nullptr;
    double sender_ready_vt = 0.0;
    std::shared_ptr<RvState> rv;
    /// Injected straggler factor, drawn on the *sender's* thread at send
    /// time (fault decisions must never depend on which thread matches the
    /// message) and applied when the wire transfer is scheduled.
    double delay_factor = 1.0;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<PostedRecv>> posted;
    std::deque<UnexpectedMsg> unexpected;
  };

  /// Schedule the payload movement between two ranks; returns completion.
  /// `ready` is when both endpoints are ready for the wire transfer.
  /// `fault_factor` multiplies the wire time (sender-drawn injected delay;
  /// the static straggler-link factor is applied here as well).
  double schedule_wire(int src_rank, int dst_rank, std::size_t bytes,
                       double ready, double* duration_out,
                       double fault_factor = 1.0);

  /// Rendezvous: handshake + wire; both endpoints complete together.
  double schedule_rendezvous(int src_rank, int dst_rank, std::size_t bytes,
                             double sender_ready, double recv_ready,
                             double* duration_out, double fault_factor = 1.0);

  /// Sender-side injected delay draw for one message (1.0 when the fault
  /// plane is off).  Must run on the sending rank's own thread so decision
  /// streams replay independently of message-matching order.
  double draw_msg_delay(Rank& me, int dst);

  void send_blocking_rendezvous(Rank& me, int dst, int tag, const double* buf,
                                std::size_t elems);
  void send_eager(Rank& me, int dst, int tag, const double* buf,
                  std::size_t elems);

  [[nodiscard]] bool is_eager(std::size_t elems) const {
    return static_cast<double>(elems * sizeof(double)) <= eager_threshold_;
  }

  Team& team_;
  double eager_threshold_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::uint64_t> abort_cv_ids_;  // one registry slot per mailbox

  static constexpr int kCollectiveTag = -1001;
};

}  // namespace srumma
