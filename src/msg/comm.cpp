#include "msg/comm.hpp"

#include <algorithm>
#include <cstring>

#include "runtime/abortable_wait.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace srumma {

namespace {
// Position of rank `r` in `group`; throws if absent.
std::size_t group_index(const std::vector<int>& group, int r) {
  for (std::size_t i = 0; i < group.size(); ++i)
    if (group[i] == r) return i;
  throw Error("collective: calling rank not in group");
}
}  // namespace

Comm::Comm(Team& team, MsgConfig cfg)
    : team_(team),
      eager_threshold_(
          cfg.eager_threshold.value_or(team.machine().eager_threshold)) {
  mailboxes_.reserve(static_cast<std::size_t>(team.size()));
  for (int r = 0; r < team.size(); ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  // Let Team::abort wake ranks parked in mailbox waits promptly.
  abort_cv_ids_.reserve(mailboxes_.size());
  for (auto& box : mailboxes_) abort_cv_ids_.push_back(team_.add_abort_cv(&box->cv));
}

Comm::~Comm() {
  for (const std::uint64_t id : abort_cv_ids_) team_.remove_abort_cv(id);
}

double Comm::draw_msg_delay(Rank& me, int dst) {
  fault::FaultPlane* fp = team_.faults();
  if (fp == nullptr) return 1.0;
  const double factor = fp->on_message(me.id(), dst, me.clock().now());
  if (factor > 1.0) me.trace().faults_delayed += 1;
  return factor;
}

double Comm::schedule_wire(int src_rank, int dst_rank, std::size_t bytes,
                           double ready, double* duration_out,
                           double fault_factor) {
  const MachineModel& mm = team_.machine();
  if (bytes == 0) {
    if (duration_out) *duration_out = 0.0;
    return ready + mm.mpi_latency;
  }
  const double dbytes = static_cast<double>(bytes);
  double completion;
  double dur;
  if (mm.same_domain(src_rank, dst_rank)) {
    // Intra-domain MPI moves data through a staging buffer at the MPI
    // library's internal copy rate (slower than an optimized block copy —
    // the gap the paper's Fig. 6 measures on the Cray X1).
    dur = dbytes / mm.mpi_copy_bw;
    if (fault_factor > 1.0) dur *= fault_factor;
    const double agg = team_.network()
                           .domain_mem(mm.domain_of(src_rank))
                           .book(ready, dbytes / mm.domain_agg_bw());
    completion = std::max(ready + mm.shm_latency + dur, agg);
  } else {
    dur = dbytes / mm.net_bw;
    // Without zero-copy NICs (IBM SP / LAPI), large-message MPI also pays
    // host-CPU staging copies; the paper's Fig. 8 shows MPI and LAPI get
    // reaching similar, sub-wire bandwidth on the SP for this reason.
    if (!mm.zero_copy) dur += dbytes / mm.host_copy_bw;
    if (fault::FaultPlane* fp = team_.faults()) {
      // Injected sender-drawn delay plus the persistent straggler link.
      dur *= fault_factor *
             fp->link_delay(mm.node_of(src_rank), mm.node_of(dst_rank));
    }
    const double c1 = team_.network().nic_out(mm.node_of(src_rank)).book(ready, dur);
    const double c2 = team_.network().nic_in(mm.node_of(dst_rank)).book(ready, dur);
    completion = std::max(c1, c2);
  }
  if (duration_out) *duration_out = dur;
  return completion;
}

double Comm::schedule_rendezvous(int src_rank, int dst_rank, std::size_t bytes,
                                 double sender_ready, double recv_ready,
                                 double* duration_out, double fault_factor) {
  const MachineModel& mm = team_.machine();
  const double start = std::max(sender_ready, recv_ready) +
                       mm.rendezvous_setup * mm.mpi_latency;
  return schedule_wire(src_rank, dst_rank, bytes, start, duration_out,
                       fault_factor);
}

void Comm::send_eager(Rank& me, int dst, int tag, const double* buf,
                      std::size_t elems) {
  const MachineModel& mm = team_.machine();
  const std::size_t bytes = elems * sizeof(double);
  const double issue_vt = me.clock().now();
  // Sender-side: per-message latency plus the copy into the eager buffer.
  me.clock().advance(mm.mpi_latency +
                     static_cast<double>(bytes) / mm.mpi_copy_bw);
  double dur = 0.0;
  double arrival;
  if (mm.same_domain(me.id(), dst)) {
    // Intra-node eager delivery is the buffer copy itself (already charged)
    // plus the shared-memory handoff latency; no extra staged copy.  No
    // wire is scheduled, so no delay is drawn either — a drawn factor
    // would count as a delay fault with no effect on the handoff.
    arrival = me.clock().now() + mm.shm_latency;
  } else {
    // Zero-byte wires are pure latency (schedule_wire ignores the factor),
    // so only draw a delay when there is a payload to stretch.
    const double fault_factor = bytes > 0 ? draw_msg_delay(me, dst) : 1.0;
    arrival =
        schedule_wire(me.id(), dst, bytes, me.clock().now(), &dur, fault_factor);
  }
  me.trace().time_comm += dur;
  me.trace().bytes_msg += bytes;
  me.trace().sends += 1;
  if (trace::Tracer* tr = team_.tracer_ptr())
    tr->span(me.id(), trace::Phase::Send, issue_vt, arrival, bytes);

  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  // Try to match an already-posted receive.
  for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
    PostedRecv& pr = **it;
    if (!pr.done && pr.src == me.id() && pr.tag == tag) {
      SRUMMA_REQUIRE(pr.elems == elems, "send/recv element count mismatch");
      if (buf != nullptr && pr.buf != nullptr && elems > 0)
        std::memcpy(pr.buf, buf, bytes);
      pr.completion = std::max(pr.posted_vt, arrival) +
                      static_cast<double>(bytes) / mm.mpi_copy_bw;
      pr.done = true;
      box.posted.erase(it);
      box.cv.notify_all();
      return;
    }
  }
  // No receive posted yet: buffer as an unexpected eager message.
  UnexpectedMsg um;
  um.src = me.id();
  um.tag = tag;
  um.elems = elems;
  um.eager = true;
  um.arrival_vt = arrival;
  if (buf != nullptr && elems > 0) um.data.assign(buf, buf + elems);
  box.unexpected.push_back(std::move(um));
  box.cv.notify_all();
}

void Comm::send_blocking_rendezvous(Rank& me, int dst, int tag,
                                    const double* buf, std::size_t elems) {
  const MachineModel& mm = team_.machine();
  const std::size_t bytes = elems * sizeof(double);
  const double issue_vt = me.clock().now();
  me.clock().advance(mm.mpi_latency);  // RTS
  const double sender_ready = me.clock().now();
  // Drawn here, on the sender's thread, even though the wire may be
  // scheduled later from the receiver's thread (see UnexpectedMsg).
  const double fault_factor = draw_msg_delay(me, dst);
  me.trace().bytes_msg += bytes;
  me.trace().sends += 1;

  auto rv = std::make_shared<RvState>();
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::unique_lock<std::mutex> lock(box.mu);
    bool matched = false;
    for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
      PostedRecv& pr = **it;
      if (!pr.done && pr.src == me.id() && pr.tag == tag) {
        SRUMMA_REQUIRE(pr.elems == elems, "send/recv element count mismatch");
        if (buf != nullptr && pr.buf != nullptr && elems > 0)
          std::memcpy(pr.buf, buf, bytes);
        double dur = 0.0;
        const double completion = schedule_rendezvous(
            me.id(), dst, bytes, sender_ready, pr.posted_vt, &dur,
            fault_factor);
        me.trace().time_comm += dur;
        pr.completion = completion;
        pr.done = true;
        rv->done = true;
        rv->completion = completion;
        box.posted.erase(it);
        box.cv.notify_all();
        matched = true;
        break;
      }
    }
    if (!matched) {
      UnexpectedMsg um;
      um.src = me.id();
      um.tag = tag;
      um.elems = elems;
      um.eager = false;
      um.src_buf = buf;
      um.sender_ready_vt = sender_ready;
      um.rv = rv;
      um.delay_factor = fault_factor;
      box.unexpected.push_back(std::move(um));
      box.cv.notify_all();
      // Block until the receiver matches the RTS and schedules the wire.
      wait_abortable(lock, box.cv, team_, [&] { return rv->done; });
      // The receiver charged the wire duration; charge the sender's wait.
    }
  }
  const double before = me.clock().now();
  if (rv->completion > before) {
    me.trace().time_wait += rv->completion - before;
    if (Timeline* tl = team_.timeline())
      tl->record(me.id(), EventKind::Wait, before, rv->completion);
    if (trace::Tracer* tr = team_.tracer_ptr())
      tr->span(me.id(), trace::Phase::Wait, before, rv->completion);
  }
  me.clock().sync_to(rv->completion);
  if (trace::Tracer* tr = team_.tracer_ptr())
    tr->span(me.id(), trace::Phase::Send, issue_vt, rv->completion, bytes);
}

void Comm::send(Rank& me, int dst, int tag, const double* buf,
                std::size_t elems) {
  SRUMMA_REQUIRE(dst >= 0 && dst < team_.size(), "send: bad destination rank");
  SRUMMA_REQUIRE(dst != me.id(), "send: self-messages are not supported");
  if (is_eager(elems)) {
    send_eager(me, dst, tag, buf, elems);
  } else {
    send_blocking_rendezvous(me, dst, tag, buf, elems);
  }
}

SendHandle Comm::isend(Rank& me, int dst, int tag, const double* buf,
                       std::size_t elems) {
  SRUMMA_REQUIRE(dst >= 0 && dst < team_.size(), "isend: bad destination rank");
  SRUMMA_REQUIRE(dst != me.id(), "isend: self-messages are not supported");
  SendHandle h;
  h.pending = true;
  if (is_eager(elems)) {
    // Eager messages are fully buffered: complete at issue, full overlap.
    send_eager(me, dst, tag, buf, elems);
  } else {
    // Rendezvous without asynchronous progress: nothing happens until
    // wait().  This is the MPI overlap cliff the paper measures (Fig. 7).
    h.deferred = true;
    h.dst = dst;
    h.tag = tag;
    h.buf = buf;
    h.elems = elems;
  }
  return h;
}

void Comm::wait(Rank& me, SendHandle& h) {
  SRUMMA_REQUIRE(h.pending, "wait: send handle is not pending");
  if (h.deferred) {
    send_blocking_rendezvous(me, h.dst, h.tag, h.buf, h.elems);
    h.deferred = false;
  }
  h.pending = false;
}

RecvHandle Comm::irecv(Rank& me, int src, int tag, double* buf,
                       std::size_t elems) {
  SRUMMA_REQUIRE(src >= 0 && src < team_.size(), "irecv: bad source rank");
  SRUMMA_REQUIRE(src != me.id(), "irecv: self-messages are not supported");
  const MachineModel& mm = team_.machine();
  const std::size_t bytes = elems * sizeof(double);
  me.trace().recvs += 1;

  RecvHandle h;
  h.pending = true;
  const double pr_post_vt = me.clock().now();
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me.id())];
  std::lock_guard<std::mutex> lock(box.mu);
  // Try unexpected messages first (FIFO per source/tag).
  for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      SRUMMA_REQUIRE(it->elems == elems, "send/recv element count mismatch");
      if (it->eager) {
        if (buf != nullptr && !it->data.empty())
          std::memcpy(buf, it->data.data(), bytes);
        h.completion = std::max(me.clock().now(), it->arrival_vt) +
                       static_cast<double>(bytes) / mm.mpi_copy_bw;
      } else {
        if (buf != nullptr && it->src_buf != nullptr && elems > 0)
          std::memcpy(buf, it->src_buf, bytes);
        double dur = 0.0;
        h.completion =
            schedule_rendezvous(src, me.id(), bytes, it->sender_ready_vt,
                                me.clock().now(), &dur, it->delay_factor);
        me.trace().time_comm += dur;
        it->rv->completion = h.completion;
        it->rv->done = true;
        box.cv.notify_all();
      }
      h.done = true;
      box.unexpected.erase(it);
      if (trace::Tracer* tr = team_.tracer_ptr())
        tr->span(me.id(), trace::Phase::Recv, pr_post_vt, h.completion, bytes);
      return h;
    }
  }
  // Post the receive for a future sender to match.
  auto pr = std::make_shared<PostedRecv>();
  pr->src = src;
  pr->tag = tag;
  pr->buf = buf;
  pr->elems = elems;
  pr->posted_vt = me.clock().now();
  box.posted.push_back(pr);
  h.slot = pr;
  return h;
}

void Comm::wait(Rank& me, RecvHandle& h) {
  SRUMMA_REQUIRE(h.pending, "wait: recv handle is not pending");
  double completion = h.completion;
  if (!h.done) {
    auto pr = std::static_pointer_cast<PostedRecv>(h.slot);
    Mailbox& box = *mailboxes_[static_cast<std::size_t>(me.id())];
    std::unique_lock<std::mutex> lock(box.mu);
    wait_abortable(lock, box.cv, team_, [&] { return pr->done; });
    completion = pr->completion;
    if (trace::Tracer* tr = team_.tracer_ptr())
      tr->span(me.id(), trace::Phase::Recv, pr->posted_vt, completion,
               pr->elems * sizeof(double));
  }
  const double before = me.clock().now();
  if (completion > before) {
    me.trace().time_wait += completion - before;
    if (Timeline* tl = team_.timeline())
      tl->record(me.id(), EventKind::Wait, before, completion);
    if (trace::Tracer* tr = team_.tracer_ptr())
      tr->span(me.id(), trace::Phase::Wait, before, completion);
  }
  me.clock().sync_to(completion);
  h.pending = false;
  h.done = true;
  h.completion = completion;
  h.slot.reset();
}

void Comm::recv(Rank& me, int src, int tag, double* buf, std::size_t elems) {
  RecvHandle h = irecv(me, src, tag, buf, elems);
  wait(me, h);
}

void Comm::sendrecv(Rank& me, int dst, int stag, const double* sbuf,
                    std::size_t selems, int src, int rtag, double* rbuf,
                    std::size_t relems) {
  RecvHandle rh = irecv(me, src, rtag, rbuf, relems);
  send(me, dst, stag, sbuf, selems);
  wait(me, rh);
}

void Comm::bcast(Rank& me, const std::vector<int>& group, int root,
                 double* buf, std::size_t elems) {
  const int n = static_cast<int>(group.size());
  SRUMMA_REQUIRE(n >= 1, "bcast: empty group");
  const int my_idx = static_cast<int>(group_index(group, me.id()));
  if (n == 1) return;
  const int root_idx = static_cast<int>(group_index(group, root));
  const int vrank = (my_idx - root_idx + n) % n;
  auto abs_rank = [&](int v) {
    return group[static_cast<std::size_t>((v + root_idx) % n)];
  };

  // Binomial tree: receive from the parent, then forward to children.
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      recv(me, abs_rank(vrank - mask), kCollectiveTag, buf, elems);
      break;
    }
    mask <<= 1;
  }
  // mask is now the lowest set bit of vrank (or >= n at the root); every
  // smaller bit of vrank is zero, so vrank + mask addresses a child.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      send(me, abs_rank(vrank + mask), kCollectiveTag, buf, elems);
    }
    mask >>= 1;
  }
}

void Comm::reduce_sum(Rank& me, const std::vector<int>& group, int root,
                      double* buf, std::size_t elems) {
  const int n = static_cast<int>(group.size());
  SRUMMA_REQUIRE(n >= 1, "reduce: empty group");
  const int my_idx = static_cast<int>(group_index(group, me.id()));
  if (n == 1) return;
  const int root_idx = static_cast<int>(group_index(group, root));
  const int vrank = (my_idx - root_idx + n) % n;
  auto abs_rank = [&](int v) {
    return group[static_cast<std::size_t>((v + root_idx) % n)];
  };

  std::vector<double> tmp;
  if (buf != nullptr) tmp.resize(elems);
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) == 0) {
      const int src_v = vrank | mask;
      if (src_v < n) {
        recv(me, abs_rank(src_v), kCollectiveTag,
             buf != nullptr ? tmp.data() : nullptr, elems);
        if (buf != nullptr)
          for (std::size_t i = 0; i < elems; ++i) buf[i] += tmp[i];
      }
    } else {
      send(me, abs_rank(vrank - mask), kCollectiveTag, buf, elems);
      break;
    }
    mask <<= 1;
  }
}

void Comm::allreduce_max(Rank& me, const std::vector<int>& group, double* buf,
                         std::size_t elems) {
  const int n = static_cast<int>(group.size());
  SRUMMA_REQUIRE(n >= 1, "allreduce: empty group");
  const int my_idx = static_cast<int>(group_index(group, me.id()));
  if (n == 1) return;
  const int vrank = my_idx;  // root is group[0]

  std::vector<double> tmp;
  if (buf != nullptr) tmp.resize(elems);
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) == 0) {
      const int src_v = vrank | mask;
      if (src_v < n) {
        recv(me, group[static_cast<std::size_t>(src_v)], kCollectiveTag,
             buf != nullptr ? tmp.data() : nullptr, elems);
        if (buf != nullptr)
          for (std::size_t i = 0; i < elems; ++i)
            buf[i] = std::max(buf[i], tmp[i]);
      }
    } else {
      send(me, group[static_cast<std::size_t>(vrank - mask)], kCollectiveTag,
           buf, elems);
      break;
    }
    mask <<= 1;
  }
  bcast(me, group, group[0], buf, elems);
}

void Comm::barrier(Rank& me, const std::vector<int>& group) {
  double token = 0.0;
  allreduce_max(me, group, &token, 1);
}

}  // namespace srumma
