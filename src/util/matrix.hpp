#pragma once
// Dense column-major matrix container and non-owning views.
//
// The library follows BLAS conventions: storage is column-major with an
// explicit leading dimension, so any rectangular sub-block of a matrix is
// itself addressable as a view (pointer + leading dimension) with no copy.
// This is what lets the SRUMMA shared-memory "direct access" flavor hand a
// peer's block straight to dgemm.

#include <cstddef>
#include <utility>

#include "util/aligned.hpp"
#include "util/error.hpp"

namespace srumma {

using index_t = std::ptrdiff_t;

/// Non-owning mutable view of a column-major matrix block.
class MatrixView {
 public:
  MatrixView() noexcept = default;
  MatrixView(double* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    SRUMMA_REQUIRE(rows >= 0 && cols >= 0, "view dims must be non-negative");
    SRUMMA_REQUIRE(ld >= rows, "leading dimension must be >= rows");
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] double* data() const noexcept { return data_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double& operator()(index_t i, index_t j) const {
    return data_[i + j * ld_];
  }

  /// View of the block with upper-left corner (i0, j0) and extent (m, n).
  [[nodiscard]] MatrixView block(index_t i0, index_t j0, index_t m,
                                 index_t n) const {
    SRUMMA_REQUIRE(i0 >= 0 && j0 >= 0 && i0 + m <= rows_ && j0 + n <= cols_,
                   "sub-block out of range");
    return MatrixView(data_ + i0 + j0 * ld_, m, n, ld_);
  }

  void fill(double v) const {
    for (index_t j = 0; j < cols_; ++j)
      for (index_t i = 0; i < rows_; ++i) (*this)(i, j) = v;
  }

 private:
  double* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

/// Non-owning read-only view of a column-major matrix block.
class ConstMatrixView {
 public:
  ConstMatrixView() noexcept = default;
  ConstMatrixView(const double* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    SRUMMA_REQUIRE(rows >= 0 && cols >= 0, "view dims must be non-negative");
    SRUMMA_REQUIRE(ld >= rows, "leading dimension must be >= rows");
  }
  ConstMatrixView(MatrixView v) noexcept  // NOLINT: implicit by design
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] const double* data() const noexcept { return data_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] const double& operator()(index_t i, index_t j) const {
    return data_[i + j * ld_];
  }

  [[nodiscard]] ConstMatrixView block(index_t i0, index_t j0, index_t m,
                                      index_t n) const {
    SRUMMA_REQUIRE(i0 >= 0 && j0 >= 0 && i0 + m <= rows_ && j0 + n <= cols_,
                   "sub-block out of range");
    return ConstMatrixView(data_ + i0 + j0 * ld_, m, n, ld_);
  }

 private:
  const double* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

/// Owning column-major matrix with cache-line aligned, packed storage
/// (leading dimension == rows).
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    SRUMMA_REQUIRE(rows >= 0 && cols >= 0, "matrix dims must be non-negative");
    data_.assign(static_cast<std::size_t>(rows * cols), 0.0);
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return rows_; }
  [[nodiscard]] index_t size() const noexcept { return rows_ * cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  [[nodiscard]] double& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }
  [[nodiscard]] const double& operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }

  [[nodiscard]] MatrixView view() {
    return MatrixView(data(), rows_, cols_, rows_);
  }
  [[nodiscard]] ConstMatrixView view() const {
    return ConstMatrixView(data(), rows_, cols_, rows_);
  }
  [[nodiscard]] MatrixView block(index_t i0, index_t j0, index_t m, index_t n) {
    return view().block(i0, j0, m, n);
  }
  [[nodiscard]] ConstMatrixView block(index_t i0, index_t j0, index_t m,
                                      index_t n) const {
    return view().block(i0, j0, m, n);
  }

  void fill(double v) { data_.assign(data_.size(), v); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  AlignedVector<double> data_;
};

/// Copy src into dst (dims must match). Views may alias only if identical.
void copy(ConstMatrixView src, MatrixView dst);

/// Maximum absolute element-wise difference between two equally-sized views.
[[nodiscard]] double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

/// Frobenius norm.
[[nodiscard]] double frobenius_norm(ConstMatrixView a);

/// Transpose src into dst (dst must be cols x rows of src).
void transpose(ConstMatrixView src, MatrixView dst);

}  // namespace srumma
