#pragma once
// Error handling for the srumma library.
//
// All precondition violations throw srumma::Error (derived from
// std::runtime_error) so callers can distinguish library failures from
// generic runtime errors.  The SRUMMA_REQUIRE macro is used on public API
// boundaries; SRUMMA_ASSERT guards internal invariants and compiles to the
// same check (this library favours always-on checking over NDEBUG stripping
// because the checks are off the critical inner loops).

#include <stdexcept>
#include <string>

namespace srumma {

/// Exception thrown on any library precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace detail

}  // namespace srumma

/// Check a public-API precondition; throws srumma::Error when violated.
#define SRUMMA_REQUIRE(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::srumma::detail::throw_error(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                 \
  } while (false)

/// Check an internal invariant; throws srumma::Error when violated.
#define SRUMMA_ASSERT(cond, msg) SRUMMA_REQUIRE(cond, msg)
