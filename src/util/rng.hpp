#pragma once
// Deterministic pseudo-random generation for tests, examples and benches.
//
// A hand-rolled xoshiro256** keeps matrix fills reproducible across
// platforms and standard-library versions (std::mt19937 streams are
// specified, but distribution output is not).

#include <array>
#include <cstdint>

#include "util/matrix.hpp"

namespace srumma {

/// xoshiro256** PRNG (public-domain algorithm by Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Fill a matrix view with uniform values in [-1, 1).
void fill_random(MatrixView m, std::uint64_t seed);

/// Fill a matrix view with a deterministic function of global coordinates,
/// so distributed and serial fills of the same logical matrix agree:
/// value(i, j) = sin(0.37*(i+row0) + 1.13*(j+col0)).
void fill_coords(MatrixView m, index_t row0, index_t col0);

}  // namespace srumma
