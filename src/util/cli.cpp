#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace srumma {

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  SRUMMA_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, default_value, help, {}};
}

void CliParser::add_choice_flag(const std::string& name,
                                const std::string& default_value,
                                std::vector<std::string> choices,
                                const std::string& help) {
  SRUMMA_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  SRUMMA_REQUIRE(!choices.empty(), "choice flag needs at least one choice");
  SRUMMA_REQUIRE(
      std::find(choices.begin(), choices.end(), default_value) != choices.end(),
      "default for --" + name + " is not among its choices");
  flags_[name] = Flag{default_value, default_value, help, std::move(choices)};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help(argv[0]).c_str(), stdout);
      return false;
    }
    SRUMMA_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto it = flags_.find(arg);
    SRUMMA_REQUIRE(it != flags_.end(), "unknown flag: --" + arg);
    if (eq == std::string::npos) {
      if (it->second.default_value == "false" || it->second.default_value == "true") {
        value = "true";  // boolean switch form: --flag
      } else {
        SRUMMA_REQUIRE(i + 1 < argc, "missing value for --" + arg);
        value = argv[++i];
      }
    }
    if (!it->second.choices.empty()) {
      const auto& ch = it->second.choices;
      SRUMMA_REQUIRE(std::find(ch.begin(), ch.end(), value) != ch.end(),
                     "invalid value for --" + arg + ": " + value);
    }
    it->second.value = value;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  SRUMMA_REQUIRE(it != flags_.end(), "unregistered flag: " + name);
  return it->second.value;
}

long long CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const long long r = std::stoll(v, &pos);
  SRUMMA_REQUIRE(pos == v.size(), "flag --" + name + " is not an integer: " + v);
  return r;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const double r = std::stod(v, &pos);
  SRUMMA_REQUIRE(pos == v.size(), "flag --" + name + " is not a number: " + v);
  return r;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw Error("flag --" + name + " is not a boolean: " + v);
}

std::string CliParser::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")";
    if (!flag.choices.empty()) {
      os << " [";
      for (std::size_t i = 0; i < flag.choices.size(); ++i)
        os << (i ? "|" : "") << flag.choices[i];
      os << "]";
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace srumma
