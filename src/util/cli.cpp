#include "util/cli.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace srumma {

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  SRUMMA_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, default_value, help};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help(argv[0]).c_str(), stdout);
      return false;
    }
    SRUMMA_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto it = flags_.find(arg);
    SRUMMA_REQUIRE(it != flags_.end(), "unknown flag: --" + arg);
    if (eq == std::string::npos) {
      if (it->second.default_value == "false" || it->second.default_value == "true") {
        value = "true";  // boolean switch form: --flag
      } else {
        SRUMMA_REQUIRE(i + 1 < argc, "missing value for --" + arg);
        value = argv[++i];
      }
    }
    it->second.value = value;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  SRUMMA_REQUIRE(it != flags_.end(), "unregistered flag: " + name);
  return it->second.value;
}

long long CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const long long r = std::stoll(v, &pos);
  SRUMMA_REQUIRE(pos == v.size(), "flag --" + name + " is not an integer: " + v);
  return r;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const double r = std::stod(v, &pos);
  SRUMMA_REQUIRE(pos == v.size(), "flag --" + name + " is not a number: " + v);
  return r;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw Error("flag --" + name + " is not a boolean: " + v);
}

std::string CliParser::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n"
       << "      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace srumma
