#pragma once
// Unit helpers shared across the machine model, schedulers and benches.
//
// All virtual time is kept in seconds (double); all sizes in bytes; all
// rates in bytes/second or flop/second.  These helpers exist so literals in
// platform definitions read like the paper's own numbers (GB/s, us, GFLOP/s).

namespace srumma {

inline constexpr double operator""_us(long double v) {
  return static_cast<double>(v) * 1e-6;
}
inline constexpr double operator""_us(unsigned long long v) {
  return static_cast<double>(v) * 1e-6;
}
inline constexpr double operator""_ms(long double v) {
  return static_cast<double>(v) * 1e-3;
}
inline constexpr double operator""_GBs(long double v) {
  return static_cast<double>(v) * 1e9;
}
inline constexpr double operator""_GBs(unsigned long long v) {
  return static_cast<double>(v) * 1e9;
}
inline constexpr double operator""_MBs(long double v) {
  return static_cast<double>(v) * 1e6;
}
inline constexpr double operator""_GFLOPs(long double v) {
  return static_cast<double>(v) * 1e9;
}
inline constexpr double operator""_GFLOPs(unsigned long long v) {
  return static_cast<double>(v) * 1e9;
}
inline constexpr double operator""_KiB(unsigned long long v) {
  return static_cast<double>(v) * 1024.0;
}
inline constexpr double operator""_MiB(unsigned long long v) {
  return static_cast<double>(v) * 1024.0 * 1024.0;
}

/// flops of a real dgemm update C += op(A)*op(B): 2*m*n*k.
inline constexpr double gemm_flops(double m, double n, double k) {
  return 2.0 * m * n * k;
}

}  // namespace srumma
