#pragma once
// Plain-text result tables for the benchmark harnesses.
//
// Every bench prints the rows the corresponding paper table/figure reports;
// TableWriter keeps that output aligned and optionally mirrors it to CSV.

#include <iosfwd>
#include <string>
#include <vector>

namespace srumma {

/// Column-aligned text table with an optional title, printed to a stream.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  /// Append one row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles/ints into a row.
  static std::string num(double v, int precision = 2);
  static std::string num(long long v);

  /// Render with box-drawing-free ASCII alignment.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Render as CSV (headers + rows).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace srumma
