#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace srumma {

void copy(ConstMatrixView src, MatrixView dst) {
  SRUMMA_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
                 "copy: dimension mismatch");
  const index_t m = src.rows();
  for (index_t j = 0; j < src.cols(); ++j) {
    std::memcpy(&dst(0, j), &src(0, j), static_cast<std::size_t>(m) * sizeof(double));
  }
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  SRUMMA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                 "max_abs_diff: dimension mismatch");
  double d = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      d = std::max(d, std::abs(a(i, j) - b(i, j)));
  return d;
}

double frobenius_norm(ConstMatrixView a) {
  double s = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) s += a(i, j) * a(i, j);
  return std::sqrt(s);
}

void transpose(ConstMatrixView src, MatrixView dst) {
  SRUMMA_REQUIRE(src.rows() == dst.cols() && src.cols() == dst.rows(),
                 "transpose: dimension mismatch");
  for (index_t j = 0; j < src.cols(); ++j)
    for (index_t i = 0; i < src.rows(); ++i) dst(j, i) = src(i, j);
}

}  // namespace srumma
