#include "util/rng.hpp"

#include <cmath>

namespace srumma {

namespace {
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Modulo bias is irrelevant for test-data purposes.
  return next() % n;
}

void fill_random(MatrixView m, std::uint64_t seed) {
  Rng rng(seed);
  for (index_t j = 0; j < m.cols(); ++j)
    for (index_t i = 0; i < m.rows(); ++i) m(i, j) = rng.uniform(-1.0, 1.0);
}

void fill_coords(MatrixView m, index_t row0, index_t col0) {
  for (index_t j = 0; j < m.cols(); ++j)
    for (index_t i = 0; i < m.rows(); ++i)
      m(i, j) = std::sin(0.37 * static_cast<double>(i + row0) +
                         1.13 * static_cast<double>(j + col0));
}

}  // namespace srumma
