#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace srumma {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SRUMMA_REQUIRE(!headers_.empty(), "table must have at least one column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  SRUMMA_REQUIRE(cells.size() == headers_.size(),
                 "row cell count must match header count");
  rows_.push_back(std::move(cells));
}

std::string TableWriter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TableWriter::num(long long v) { return std::to_string(v); }

void TableWriter::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = headers_.size() - 1;
  for (auto w : width) total += w + 1;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void TableWriter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace srumma
