#pragma once
// Minimal command-line flag parser for the examples and bench binaries.
//
// Supports "--name value" and "--name=value" forms plus boolean switches.
// Unknown flags are an error so typos in experiment sweeps fail loudly.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace srumma {

class CliParser {
 public:
  /// Register a flag with a default value and a help string.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Register a flag restricted to an enumerated set of values; parse()
  /// rejects anything else.  Used e.g. for --gemm-kernel, whose choice set
  /// comes from the blas kernel registry.
  void add_choice_flag(const std::string& name,
                       const std::string& default_value,
                       std::vector<std::string> choices,
                       const std::string& help);

  /// Parse argv; throws srumma::Error on unknown flags or missing values.
  /// Returns false (after printing help) when --help was requested.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string help(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    std::vector<std::string> choices;  // empty = unrestricted
  };
  std::map<std::string, Flag> flags_;
};

}  // namespace srumma
