#pragma once
// Cache-line / SIMD aligned storage used for matrix data.
//
// Matrix blocks are allocated with 64-byte alignment so the packed dgemm
// micro-kernels can assume aligned loads and blocks never straddle a cache
// line at element 0.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace srumma {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal aligned allocator (std::allocator-compatible).
template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;

  // The non-type Alignment parameter defeats allocator_traits' default
  // rebind deduction, so spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    const std::size_t bytes = ((n * sizeof(T) + Alignment - 1) / Alignment) * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// Vector with cache-line aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace srumma
